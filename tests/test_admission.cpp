/**
 * @file
 * Admission-control state-machine tests: exact hysteresis transition
 * sequences (no flapping), the one-regime-step-per-update rule,
 * per-regime decision policy with structured explainable rejections,
 * and the per-tenant in-flight token ledger.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"

namespace softrec {
namespace {

AdmissionThresholds
testThresholds()
{
    AdmissionThresholds thresholds;
    thresholds.softEnterPct = 50;
    thresholds.hardEnterPct = 80;
    thresholds.hysteresisPct = 20;
    thresholds.tenantTokenBudget = 100;
    thresholds.softPromptCapTokens = 8;
    return thresholds;
}

PressureSample
kvPressure(double pct)
{
    PressureSample sample;
    sample.kvOccupancyPct = pct;
    return sample;
}

AdmissionCandidate
candidate(int64_t tenant, int64_t prompt, int64_t generate)
{
    AdmissionCandidate c;
    c.tenantId = tenant;
    c.promptTokens = prompt;
    c.footprintTokens = prompt + generate;
    return c;
}

TEST(AdmissionController, SyntheticRampWalksOneExactModeSequence)
{
    // Enter thresholds: soft 50, hard 80; exits 20 lower (30 / 60).
    // The ramp up and back down must produce exactly one
    // normal→soft→hard→soft→normal sequence — four transitions, in
    // order, and nothing else.
    AdmissionController controller(testThresholds());
    const double ramp[] = {10, 55, 85, 70, 55, 45, 25, 10};
    const AdmissionMode expected[] = {
        AdmissionMode::Normal,        // 10 < 50
        AdmissionMode::SoftThrottled, // 55 >= 50
        AdmissionMode::HardFailFast,  // 85 >= 80
        AdmissionMode::HardFailFast,  // 70 > 60: hysteresis holds hard
        AdmissionMode::SoftThrottled, // 55 <= 60
        AdmissionMode::SoftThrottled, // 45 > 30: hysteresis holds soft
        AdmissionMode::Normal,        // 25 <= 30
        AdmissionMode::Normal,        // 10
    };
    std::vector<AdmissionMode> trace;
    for (double pct : ramp) {
        controller.updatePressure(kvPressure(pct));
        trace.push_back(controller.mode());
    }
    ASSERT_EQ(trace.size(), 8u);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i], expected[i]) << "ramp step " << i;
    EXPECT_EQ(controller.residency().transitions, 4);
}

TEST(AdmissionController, OscillationAroundEnterThresholdNeverFlaps)
{
    // 48/52/48/52... straddles the soft-enter threshold (50) but
    // stays above the soft-exit threshold (30): one transition total,
    // however long the oscillation runs.
    AdmissionController controller(testThresholds());
    for (int i = 0; i < 50; ++i)
        controller.updatePressure(
            kvPressure(i % 2 == 0 ? 52.0 : 48.0));
    EXPECT_EQ(controller.mode(), AdmissionMode::SoftThrottled);
    EXPECT_EQ(controller.residency().transitions, 1);
    // And around the hard threshold from above: 78/82 after entering
    // hard keeps holding hard (exit is 60).
    for (int i = 0; i < 50; ++i)
        controller.updatePressure(
            kvPressure(i % 2 == 0 ? 82.0 : 78.0));
    EXPECT_EQ(controller.mode(), AdmissionMode::HardFailFast);
    EXPECT_EQ(controller.residency().transitions, 2);
}

TEST(AdmissionController, MovesOneRegimePerUpdate)
{
    // A pressure spike straight to 95 must pass through soft before
    // hard: mode observers between step boundaries never see a skip.
    AdmissionController controller(testThresholds());
    EXPECT_TRUE(controller.updatePressure(kvPressure(95.0)));
    EXPECT_EQ(controller.mode(), AdmissionMode::SoftThrottled);
    EXPECT_TRUE(controller.updatePressure(kvPressure(95.0)));
    EXPECT_EQ(controller.mode(), AdmissionMode::HardFailFast);
    // Collapse to 0 likewise steps down one regime at a time.
    EXPECT_TRUE(controller.updatePressure(kvPressure(0.0)));
    EXPECT_EQ(controller.mode(), AdmissionMode::SoftThrottled);
    EXPECT_TRUE(controller.updatePressure(kvPressure(0.0)));
    EXPECT_EQ(controller.mode(), AdmissionMode::Normal);
}

TEST(AdmissionController, NormalModeEnforcesTenantBudget)
{
    AdmissionController controller(testThresholds());
    // Budget 100: 60 fits, another 60 for the same tenant does not.
    EXPECT_TRUE(controller.admitReserve(candidate(7, 40, 20)).accepted);
    EXPECT_EQ(controller.tenantTokens(7), 60);

    const AdmissionDecision over =
        controller.admitReserve(candidate(7, 40, 20));
    EXPECT_FALSE(over.accepted);
    EXPECT_EQ(over.mode, AdmissionMode::Normal);
    EXPECT_EQ(over.metric, "tenant_inflight_tokens");
    EXPECT_EQ(over.value, 120.0);
    EXPECT_EQ(over.threshold, 100.0);
    EXPECT_NE(over.reason.find("tenant 7"), std::string::npos);

    // Another tenant is unaffected.
    EXPECT_TRUE(controller.admitReserve(candidate(8, 40, 20)).accepted);

    // Releasing the reservation reopens the budget.
    controller.release(7, 60);
    EXPECT_EQ(controller.tenantTokens(7), 0);
    EXPECT_TRUE(controller.admitReserve(candidate(7, 40, 20)).accepted);
}

TEST(AdmissionController, SoftModeCapsPromptsAndHalvesBudgets)
{
    AdmissionController controller(testThresholds());
    controller.updatePressure(kvPressure(55.0)); // -> soft
    ASSERT_EQ(controller.mode(), AdmissionMode::SoftThrottled);

    // Prompt cap 8: a 9-token prompt is rejected with the metric.
    const AdmissionDecision long_prompt =
        controller.admitReserve(candidate(1, 9, 1));
    EXPECT_FALSE(long_prompt.accepted);
    EXPECT_EQ(long_prompt.mode, AdmissionMode::SoftThrottled);
    EXPECT_EQ(long_prompt.metric, "prompt_tokens");
    EXPECT_EQ(long_prompt.value, 9.0);
    EXPECT_EQ(long_prompt.threshold, 8.0);

    // Budget halves to 50 while throttled: 40 fits, 40 more does not
    // — only clearly-under-budget tenants get in.
    EXPECT_TRUE(controller.admitReserve(candidate(1, 8, 32)).accepted);
    const AdmissionDecision throttled =
        controller.admitReserve(candidate(1, 8, 32));
    EXPECT_FALSE(throttled.accepted);
    EXPECT_EQ(throttled.metric, "tenant_inflight_tokens");
    EXPECT_EQ(throttled.threshold, 50.0);
    EXPECT_NE(throttled.reason.find("soft"), std::string::npos);

    // Back in normal mode the same tenant fits again (full budget).
    controller.updatePressure(kvPressure(10.0));
    ASSERT_EQ(controller.mode(), AdmissionMode::Normal);
    EXPECT_TRUE(controller.admitReserve(candidate(1, 8, 32)).accepted);
}

TEST(AdmissionController, HardModeRejectsEverythingNamingTheTrigger)
{
    AdmissionController controller(testThresholds());
    // Queue depth, the hotter metric here, trips the regime; the
    // rejection must name it, not just say "mode is hard".
    PressureSample sample;
    sample.kvOccupancyPct = 40.0;
    sample.queueDepthPct = 85.0;
    controller.updatePressure(sample);
    controller.updatePressure(sample);
    ASSERT_EQ(controller.mode(), AdmissionMode::HardFailFast);

    const AdmissionDecision decision =
        controller.admitReserve(candidate(1, 1, 1));
    EXPECT_FALSE(decision.accepted);
    EXPECT_EQ(decision.mode, AdmissionMode::HardFailFast);
    EXPECT_EQ(decision.metric, "queue_depth_pct");
    EXPECT_EQ(decision.value, 85.0);
    EXPECT_EQ(decision.threshold, 80.0);
    EXPECT_NE(decision.reason.find("hard"), std::string::npos);
    EXPECT_EQ(controller.tenantTokens(1), 0); // nothing reserved
}

TEST(AdmissionController, PressureTieGoesToKvOccupancy)
{
    AdmissionController controller(testThresholds());
    PressureSample sample;
    sample.kvOccupancyPct = 85.0;
    sample.queueDepthPct = 85.0;
    controller.updatePressure(sample);
    controller.updatePressure(sample);
    const AdmissionDecision decision =
        controller.admitReserve(candidate(1, 1, 1));
    EXPECT_EQ(decision.metric, "kv_occupancy_pct");
}

TEST(AdmissionController, ResidencyCountsUpdatesPerMode)
{
    AdmissionController controller(testThresholds());
    controller.updatePressure(kvPressure(10.0)); // normal
    controller.updatePressure(kvPressure(55.0)); // soft
    controller.updatePressure(kvPressure(55.0)); // soft
    controller.updatePressure(kvPressure(85.0)); // hard
    const AdmissionController::Residency residency =
        controller.residency();
    EXPECT_EQ(residency.updatesInMode[size_t(AdmissionMode::Normal)],
              1);
    EXPECT_EQ(
        residency.updatesInMode[size_t(AdmissionMode::SoftThrottled)],
        2);
    EXPECT_EQ(
        residency.updatesInMode[size_t(AdmissionMode::HardFailFast)],
        1);
    EXPECT_EQ(residency.transitions, 2);
}

TEST(AdmissionController, ConcurrentReservesNeverOvershootTheBudget)
{
    // 8 threads race 25-token reservations against a 100-token
    // budget: exactly 4 can win, whatever the interleaving, because
    // decide+reserve is atomic. Run under tsan in CI.
    AdmissionController controller(testThresholds());
    std::vector<std::thread> producers;
    std::vector<int> wins(8, 0);
    for (int t = 0; t < 8; ++t) {
        producers.emplace_back([&controller, &wins, t] {
            if (controller.admitReserve(candidate(3, 20, 5)).accepted)
                wins[size_t(t)] = 1;
        });
    }
    for (std::thread &producer : producers)
        producer.join();
    int total = 0;
    for (int win : wins)
        total += win;
    EXPECT_EQ(total, 4);
    EXPECT_EQ(controller.tenantTokens(3), 100);
}

TEST(AdmissionDecision, OkCarriesModeAndNoReason)
{
    const AdmissionDecision ok =
        AdmissionDecision::ok(AdmissionMode::SoftThrottled);
    EXPECT_TRUE(ok.accepted);
    EXPECT_EQ(ok.mode, AdmissionMode::SoftThrottled);
    EXPECT_TRUE(ok.reason.empty());
    EXPECT_TRUE(ok.metric.empty());
}

TEST(AdmissionMode, NamesAreStable)
{
    EXPECT_STREQ(admissionModeName(AdmissionMode::Normal), "normal");
    EXPECT_STREQ(admissionModeName(AdmissionMode::SoftThrottled),
                 "soft");
    EXPECT_STREQ(admissionModeName(AdmissionMode::HardFailFast),
                 "hard");
}

} // namespace
} // namespace softrec
