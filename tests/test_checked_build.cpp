/**
 * @file
 * Proof that the checked-build layer actually fires.
 *
 * This target is compiled with SOFTREC_CHECKED_BUILD forced on (see
 * tests/CMakeLists.txt), independent of the configure-time option, so
 * every build configuration verifies that out-of-bounds accesses, NaN
 * poison, and recomposition-invariant violations trip SOFTREC_CHECK
 * rather than silently corrupting results. The header-level checks
 * (Tensor/BsrMatrix accessors, the checkXxx helpers) instantiate in
 * this translation unit with checks active; library-internal call
 * sites are exercised by running the full suite under the `checked`
 * and `asan-ubsan` presets (scripts/ci.sh).
 */

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/exec_context.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sparse/bsr.hpp"
#include "sparse/bsr_matrix.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(CheckedBuild, MacroIsActiveInThisTranslationUnit)
{
    ASSERT_TRUE(kCheckedBuild)
        << "test_checked_build must compile with SOFTREC_CHECKED_BUILD";
    EXPECT_THROW(SOFTREC_CHECK(1 == 2, "forced failure %d", 42),
                 std::logic_error);
    SOFTREC_CHECK(1 == 1, "must not fire");
}

TEST(CheckedBuild, TensorBoundsFire)
{
    Tensor<float> t(Shape({2, 3}));
    EXPECT_THROW(t.at(6), std::logic_error);
    EXPECT_THROW(t.at(-1), std::logic_error);
    EXPECT_THROW(t.at(2, 0), std::logic_error);
    EXPECT_THROW(t.at(0, 3), std::logic_error);
    EXPECT_THROW(t.at(0, 0, 0), std::logic_error); // wrong rank
    // In-range access stays untouched.
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.at(5), 7.0f);
}

TEST(CheckedBuild, BsrMatrixBoundsFire)
{
    // 2x2 block grid, diagonal blocks of edge 4 stored.
    const BsrLayout layout =
        BsrLayout::fromMask(4, 2, 2, {true, false, false, true});
    BsrMatrix m(layout);
    EXPECT_THROW(m.at(2, 0, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 4, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 0, -1), std::logic_error);
    EXPECT_THROW(m.blockData(2), std::logic_error);
    m.at(1, 3, 3) = Half(2.0f);
    EXPECT_EQ(float(m.at(1, 3, 3)), 2.0f);
}

TEST(CheckedBuild, NanPoisonFires)
{
    Tensor<float> t(Shape({2, 2}), 1.0f);
    checkFinite(t, "clean tensor"); // must not fire
    t.at(1, 1) = kNan;
    EXPECT_THROW(checkFinite(t, "poisoned tensor"), std::logic_error);
}

TEST(CheckedBuild, PositiveInfinityFires)
{
    Tensor<float> t(Shape({4}), 0.0f);
    t.at(2) = kInf;
    EXPECT_THROW(checkFinite(t, "inf tensor"), std::logic_error);
}

TEST(CheckedBuild, NegativeInfinityIsLegalMaskPadding)
{
    Tensor<float> logits(Shape({4}), 0.0f);
    logits.at(3) = -kInf;
    checkFinite(logits, "masked logits", /*allow_neg_inf=*/true);
    EXPECT_THROW(checkFinite(logits, "masked logits rejected"),
                 std::logic_error);
}

TEST(CheckedBuild, RowSumInvariantFires)
{
    Tensor<Half> y(Shape({2, 4}));
    for (int64_t j = 0; j < 4; ++j)
        y.at(0, j) = Half(0.25f); // proper probability row
    // Row 1 stays all-zero: legal (fully masked).
    checkRowSumsNearOne(y, "good rows");

    y.at(1, 0) = Half(0.5f); // row 1 now sums to 0.5
    EXPECT_THROW(checkRowSumsNearOne(y, "bad row"), std::logic_error);
}

TEST(CheckedBuild, ReconFactorInvariantFires)
{
    Tensor<float> r(Shape({2, 2}), 0.5f);
    r.at(0, 1) = 0.0f; // masked sub-vector: legal
    checkReconFactors(r, "good factors");

    r.at(1, 0) = 1.5f; // above 1: corrupted IR
    EXPECT_THROW(checkReconFactors(r, "bad factor"), std::logic_error);
    r.at(1, 0) = -0.1f;
    EXPECT_THROW(checkReconFactors(r, "negative factor"),
                 std::logic_error);
    r.at(1, 0) = kNan;
    EXPECT_THROW(checkReconFactors(r, "NaN factor"), std::logic_error);
}

TEST(CheckedBuild, SpanViewAdapterWorks)
{
    std::vector<float> v{0.25f, 0.75f};
    checkFinite(spanOf(v), "clean span");
    v[1] = kNan;
    EXPECT_THROW(checkFinite(spanOf(v), "poisoned span"),
                 std::logic_error);
}

TEST(CheckedBuild, RecompositionPipelineRunsCleanUnderChecks)
{
    // The LS -> IR -> GS pipeline on a masked input must pass every
    // invariant (d > 0 on unmasked rows, r' in (0, 1], row sums ~1).
    SoftmaxShape desc;
    desc.name = "checked.pipeline";
    desc.batch = 1;
    desc.rows = 8;
    desc.cols = 32;
    desc.subVector = 8;

    Tensor<Half> in(Shape({desc.rows, desc.cols}));
    for (int64_t i = 0; i < desc.rows; ++i) {
        for (int64_t j = 0; j < desc.cols; ++j) {
            const bool masked = (i + j) % 7 == 0;
            in.at(i, j) = Half(masked ? -kInf
                                      : 0.1f * float(j - i));
        }
    }
    Tensor<Half> x_prime(in.shape());
    Tensor<float> local_max(Shape({desc.rows, desc.numSubVectors()}));
    Tensor<float> local_sum(Shape({desc.rows, desc.numSubVectors()}));
    Tensor<float> recon(Shape({desc.rows, desc.numSubVectors()}));
    Tensor<Half> y(in.shape());

    lsRun(execCtx(), desc, in, x_prime, local_max, local_sum);
    irRun(execCtx(), desc, local_max, local_sum, recon);
    gsRun(execCtx(), desc, x_prime, recon, y);

    checkReconFactors(recon, "pipeline r'");
    checkRowSumsNearOne(y, "pipeline output");
}

} // namespace
} // namespace softrec
