/**
 * @file
 * Tests of the short-sequence fused-MHA kernel and the
 * online-normalizer softmax (the paper's related-work baselines).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "core/softmax_math.hpp"
#include "kernels/fused_mha.hpp"
#include "kernels/softmax_kernels.hpp"
#include "model/schedule.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/corpus.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

TEST(OnlineNormalizer, MatchesTwoPassValues)
{
    Rng rng(1);
    std::vector<double> x(97);
    for (double &v : x)
        v = rng.normal(0.0, 3.0);
    const OnlineNormalizerState state = onlineNormalizer(x);
    double m = x[0], d = 0.0;
    for (double v : x)
        m = std::max(m, v);
    for (double v : x)
        d += std::exp(v - m);
    EXPECT_DOUBLE_EQ(state.runningMax, m);
    EXPECT_NEAR(state.runningSum, d, d * 1e-12);
}

TEST(OnlineSoftmax, IdenticalToSafeSoftmax)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x(64);
        for (double &v : x)
            v = rng.normal(0.0, 5.0);
        const auto a = safeSoftmax(x);
        const auto b = onlineSoftmax(x);
        for (size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(a[i], b[i], 1e-14);
    }
}

TEST(OnlineSoftmax, HandlesMaskedPrefix)
{
    const double inf = std::numeric_limits<double>::infinity();
    // Leading -inf entries exercise the "no finite value yet" branch.
    const std::vector<double> x = {-inf, -inf, 1.0, 2.0};
    const auto y = onlineSoftmax(x);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_NEAR(y[2] + y[3], 1.0, 1e-12);
    // All-masked row.
    const auto zero = onlineSoftmax({-inf, -inf});
    EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(OnlineRowSoftmaxKernel, MatchesBaselineKernel)
{
    Rng rng(3);
    const Tensor<Half> in = makeAttentionScores(rng, 32, 100);
    Tensor<Half> a(in.shape()), b(in.shape());
    SoftmaxShape desc;
    desc.rows = 32;
    desc.cols = 100;
    rowSoftmaxRun(execCtx(), desc, in, a);
    onlineRowSoftmaxRun(execCtx(), desc, in, b);
    EXPECT_LT(maxAbsDiff(toFloat(a), toFloat(b)), 1e-3);
}

TEST(OnlineRowSoftmaxProfile, SameTrafficBetterSerialization)
{
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape desc;
    desc.batch = 16;
    desc.rows = desc.cols = 4096;
    const KernelProfile base = rowSoftmaxProfile(spec, desc);
    const KernelProfile online = onlineRowSoftmaxProfile(spec, desc);
    EXPECT_EQ(online.dramBytes(), base.dramBytes());
    EXPECT_GT(online.serializationFactor, base.serializationFactor);
    EXPECT_LT(online.serializationFactor, 1.0);
}

TEST(FusedMha, FunctionalMatchesBaselineAttention)
{
    SdaConfig config;
    config.seqLen = 96;
    config.dHead = 16;
    config.subVector = 16;
    config.attnTiling.tileM = 16;
    config.attnTiling.tileN = 16;
    config.attnTiling.tileK = 16;
    AttentionInputs inputs = makeAttentionInputs(config);
    Rng rng(4);
    fillNormal(inputs.q, rng, 0.0, 0.7);
    fillNormal(inputs.k, rng, 0.0, 0.7);
    fillNormal(inputs.v, rng, 0.0, 0.7);

    FusedMhaDesc desc;
    desc.seqLen = config.seqLen;
    desc.dHead = config.dHead;
    desc.scale = config.scale();
    Tensor<Half> out(Shape({config.seqLen, config.dHead}));
    fusedMhaRun(execCtx(), desc, inputs.q, inputs.k, inputs.v, out);

    const Tensor<float> reference =
        referenceDenseAttention(config, inputs);
    EXPECT_LT(maxAbsDiff(toFloat(out), reference), 2e-2);
}

TEST(FusedMha, CausalVariant)
{
    FusedMhaDesc desc;
    desc.seqLen = 32;
    desc.dHead = 8;
    desc.scale = 1.0 / std::sqrt(8.0);
    desc.causalMask = true;
    Tensor<Half> q(Shape({32, 8})), k(q.shape()), v(q.shape());
    Rng rng(5);
    fillNormal(q, rng, 0.0, 0.7);
    fillNormal(k, rng, 0.0, 0.7);
    fillNormal(v, rng, 0.0, 0.7);
    Tensor<Half> out(q.shape());
    fusedMhaRun(execCtx(), desc, q, k, v, out);
    // Row 0 attends only to itself.
    for (int64_t d = 0; d < 8; ++d)
        EXPECT_NEAR(float(out.at(0, d)), float(v.at(0, d)), 5e-3);
}

TEST(FusedMha, SupportBoundaryTracksSharedMemory)
{
    const GpuSpec a100 = GpuSpec::a100(); // 164 KiB smem
    const GpuSpec t4 = GpuSpec::t4();     // 64 KiB smem
    FusedMhaDesc desc;
    desc.dHead = 64;
    desc.seqLen = 384;
    // 384 x 64 x 2 x 2B = 96 KiB: fits 3/4 of A100's smem, not T4's.
    EXPECT_TRUE(fusedMhaSupported(a100, desc));
    EXPECT_FALSE(fusedMhaSupported(t4, desc));
    desc.seqLen = 4096;
    EXPECT_FALSE(fusedMhaSupported(a100, desc));
    EXPECT_THROW(fusedMhaProfile(a100, desc), std::runtime_error);
}

TEST(FusedMha, ProfileMovesOnlyLayerInputsAndOutputs)
{
    const GpuSpec spec = GpuSpec::a100();
    FusedMhaDesc desc;
    desc.batch = 16;
    desc.seqLen = 256;
    desc.dHead = 64;
    const KernelProfile prof = fusedMhaProfile(spec, desc);
    EXPECT_EQ(prof.dramReadBytes, uint64_t(16) * 3 * 256 * 64 * 2);
    EXPECT_EQ(prof.dramWriteBytes, uint64_t(16) * 256 * 64 * 2);
    EXPECT_GT(prof.fusedPenalty, 1.0);
    EXPECT_GT(prof.tensorFlops, 0.0);
}

TEST(Scheduler, FusedMhaPolicyKicksInOnlyWhenShortDenseBaseline)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 256;
    run.fusion.fusedMhaShortSeq = true;
    TransformerScheduler short_dense(spec, ModelConfig::bertLarge(),
                                     run);
    EXPECT_EQ(short_dense.sdaSchedule().kernels.size(), 1u);
    EXPECT_EQ(short_dense.sdaSchedule().kernels[0].name,
              "sda.fused_mha");
    EXPECT_EQ(short_dense.sdaSchedule().attentionSweeps, 0);

    run.seqLen = 4096; // too long: falls back to the 3-kernel plan
    TransformerScheduler long_dense(spec, ModelConfig::bertLarge(),
                                    run);
    EXPECT_EQ(long_dense.sdaSchedule().kernels.size(), 3u);

    run.seqLen = 256;
    run.strategy = Strategy::Fused; // recomposition path unaffected
    TransformerScheduler recomposed(spec, ModelConfig::bertLarge(),
                                    run);
    EXPECT_EQ(recomposed.sdaSchedule().kernels[0].name, "sda.qk+ls");
}

TEST(Scheduler, OnlineSoftmaxPolicySwapsTheKernel)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    run.fusion.onlineSoftmax = true;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    bool found = false;
    for (const auto &prof : sched.sdaSchedule().kernels) {
        if (prof.category == KernelCategory::Softmax) {
            EXPECT_NE(prof.name.find(".online"), std::string::npos);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace softrec
