/**
 * @file
 * Property tests of the recomposition mathematics (paper Eq. (1)-(3)):
 * the decomposed softmax must be *identical* to safe softmax for every
 * sub-vector width, input distribution, and masking pattern.
 */

#include <cmath>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/softmax_math.hpp"

namespace softrec {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double>
randomRow(Rng &rng, size_t len, double stddev)
{
    std::vector<double> row(len);
    for (double &v : row)
        v = rng.normal(0.0, stddev);
    return row;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

TEST(SafeSoftmax, SumsToOne)
{
    Rng rng(1);
    const auto y = safeSoftmax(randomRow(rng, 257, 3.0));
    double sum = 0.0;
    for (double v : y)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SafeSoftmax, InvariantToConstantShift)
{
    Rng rng(2);
    auto x = randomRow(rng, 64, 2.0);
    const auto y1 = safeSoftmax(x);
    for (double &v : x)
        v += 1234.5;
    const auto y2 = safeSoftmax(x);
    EXPECT_LT(maxAbsDiff(y1, y2), 1e-12);
}

TEST(SafeSoftmax, HandlesHugeMagnitudesWithoutOverflow)
{
    std::vector<double> x = {1e4, 1e4 - 1.0, -1e4};
    const auto y = safeSoftmax(x);
    for (double v : y) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
    }
    EXPECT_GT(y[0], y[1]);
    EXPECT_NEAR(y[2], 0.0, 1e-300);
}

TEST(SafeSoftmax, SingleElementIsOne)
{
    EXPECT_DOUBLE_EQ(safeSoftmax({42.0})[0], 1.0);
}

TEST(SafeSoftmax, AllEqualIsUniform)
{
    const auto y = safeSoftmax(std::vector<double>(10, 7.0));
    for (double v : y)
        EXPECT_NEAR(v, 0.1, 1e-13);
}

TEST(SafeSoftmax, FullyMaskedRowIsZero)
{
    const auto y = safeSoftmax({-kInf, -kInf, -kInf});
    for (double v : y)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SafeSoftmax, PartiallyMaskedIgnoresMaskedEntries)
{
    const auto y = safeSoftmax({1.0, -kInf, 1.0});
    EXPECT_NEAR(y[0], 0.5, 1e-13);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_NEAR(y[2], 0.5, 1e-13);
}

TEST(LocalSoftmax, IntermediatesMatchDefinition)
{
    Rng rng(3);
    const auto x = randomRow(rng, 32, 2.0);
    const auto ls = localSoftmax(x, 8);
    ASSERT_EQ(ls.localMax.size(), 4u);
    for (size_t sv = 0; sv < 4; ++sv) {
        double m = -kInf, d = 0.0;
        for (size_t i = sv * 8; i < sv * 8 + 8; ++i)
            m = std::max(m, x[i]);
        for (size_t i = sv * 8; i < sv * 8 + 8; ++i)
            d += std::exp(x[i] - m);
        EXPECT_DOUBLE_EQ(ls.localMax[sv], m);
        EXPECT_NEAR(ls.localSum[sv], d, 1e-12);
        for (size_t i = sv * 8; i < sv * 8 + 8; ++i)
            EXPECT_NEAR(ls.xPrime[i], std::exp(x[i] - m), 1e-12);
    }
}

TEST(InterReduction, FactorsScaleLocalToGlobal)
{
    // With identical sub-vector maxima, r' = 1 / sum(d').
    const std::vector<double> m = {2.0, 2.0};
    const std::vector<double> d = {3.0, 5.0};
    const auto r = interReduction(m, d);
    EXPECT_NEAR(r[0], 1.0 / 8.0, 1e-13);
    EXPECT_NEAR(r[1], 1.0 / 8.0, 1e-13);
}

TEST(InterReduction, FullyMaskedSubVectorGetsZeroFactor)
{
    const std::vector<double> m = {1.0, -kInf};
    const std::vector<double> d = {2.0, 0.0};
    const auto r = interReduction(m, d);
    EXPECT_GT(r[0], 0.0);
    EXPECT_DOUBLE_EQ(r[1], 0.0);
}

/** Sweep (row length, sub-vector width, stddev). */
class DecompositionExactness
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{};

TEST_P(DecompositionExactness, MatchesSafeSoftmax)
{
    const auto [len, t, stddev] = GetParam();
    Rng rng(uint64_t(len) * 1000003 + uint64_t(t));
    for (int trial = 0; trial < 5; ++trial) {
        const auto x = randomRow(rng, size_t(len), stddev);
        const auto reference = safeSoftmax(x);
        const auto recomposed = decomposedSoftmax(x, t);
        EXPECT_LT(maxAbsDiff(reference, recomposed), 1e-14)
            << "len=" << len << " t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionExactness,
    ::testing::Combine(::testing::Values(1, 7, 64, 256, 1000),
                       ::testing::Values(1, 8, 32, 64, 128),
                       ::testing::Values(0.5, 3.0, 20.0)));

TEST(Decomposition, ExactWithMaskedEntries)
{
    Rng rng(4);
    auto x = randomRow(rng, 128, 2.0);
    // Mask a whole sub-vector plus scattered singles.
    for (size_t i = 64; i < 96; ++i)
        x[i] = -kInf;
    x[3] = -kInf;
    x[127] = -kInf;
    EXPECT_LT(maxAbsDiff(safeSoftmax(x), decomposedSoftmax(x, 32)),
              1e-14);
}

TEST(Decomposition, ExactWhenSubVectorExceedsRow)
{
    Rng rng(5);
    const auto x = randomRow(rng, 10, 2.0);
    EXPECT_LT(maxAbsDiff(safeSoftmax(x), decomposedSoftmax(x, 64)),
              1e-14);
}

TEST(Decomposition, RaggedTailSubVector)
{
    Rng rng(6);
    const auto x = randomRow(rng, 100, 2.0); // 100 = 3*32 + 4
    EXPECT_LT(maxAbsDiff(safeSoftmax(x), decomposedSoftmax(x, 32)),
              1e-14);
}

TEST(SoftmaxBackward, MatchesNumericalGradient)
{
    Rng rng(7);
    const size_t n = 24;
    const auto x = randomRow(rng, n, 1.5);
    const auto dy = randomRow(rng, n, 1.0);
    const auto y = safeSoftmax(x);
    const auto dx = softmaxBackward(y, dy);

    // E = sum_i dy_i * y_i(x); check dE/dx_k by central differences.
    const double eps = 1e-6;
    for (size_t k = 0; k < n; ++k) {
        auto xp = x, xm = x;
        xp[k] += eps;
        xm[k] -= eps;
        const auto yp = safeSoftmax(xp);
        const auto ym = safeSoftmax(xm);
        double ep = 0.0, em = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ep += dy[i] * yp[i];
            em += dy[i] * ym[i];
        }
        EXPECT_NEAR(dx[k], (ep - em) / (2 * eps), 1e-6);
    }
}

TEST(SoftmaxBackward, DependsOnlyOnOutput)
{
    // The paper's Section 6 argument: two different inputs with the
    // same softmax output must produce the same gradient.
    const std::vector<double> x1 = {1.0, 2.0, 3.0};
    std::vector<double> x2 = x1;
    for (double &v : x2)
        v += 100.0; // same softmax output
    const std::vector<double> dy = {0.3, -0.2, 0.9};
    const auto dx1 = softmaxBackward(safeSoftmax(x1), dy);
    const auto dx2 = softmaxBackward(safeSoftmax(x2), dy);
    EXPECT_LT(maxAbsDiff(dx1, dx2), 1e-12);
}

TEST(SoftmaxBackward, GradientSumsToZero)
{
    // Softmax outputs sum to 1, so the Jacobian rows sum to zero.
    Rng rng(8);
    const auto y = safeSoftmax(randomRow(rng, 50, 2.0));
    const auto dx = softmaxBackward(y, randomRow(rng, 50, 1.0));
    double sum = 0.0;
    for (double v : dx)
        sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-12);
}

} // namespace
} // namespace softrec
