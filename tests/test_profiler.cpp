/**
 * @file
 * Unit tests of the prof::Profiler / prof::Scope observability layer:
 * inert scopes when no profiler is attached, nested scope
 * aggregation, deterministic per-thread traffic merging under the
 * ThreadPool, BytesOnly semantics, and thread-slot bookkeeping. The
 * ParallelMergeIsDeterministic case doubles as the tsan workload for
 * the profiler (scripts/ci.sh runs this binary under
 * -fsanitize=thread).
 */

#include <cstdint>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/profiler.hpp"

namespace softrec {
namespace {

/** A context over a local pool with the given total concurrency. */
struct PooledContext
{
    explicit PooledContext(int threads) : pool(threads)
    {
        ctx.pool = &pool;
    }
    ThreadPool pool;
    ExecContext ctx;
};

TEST(Profiler, DetachedScopeIsInert)
{
    ExecContext ctx; // no profiler attached
    prof::Scope scope(ctx, "kernel.x");
    EXPECT_FALSE(scope.active());
    scope.addRead(1024);   // must be a no-op, not a crash
    scope.addWrite(2048);
}

TEST(Profiler, DetachedScopeRecordsNothing)
{
    prof::Profiler profiler;
    {
        ExecContext ctx; // profiler NOT attached
        prof::Scope scope(ctx, "kernel.x");
        scope.addRead(64);
    }
    EXPECT_TRUE(profiler.snapshot().empty());
    EXPECT_EQ(profiler.statsFor("kernel.x").calls, 0);
    EXPECT_EQ(profiler.statsFor("kernel.x").bytesRead, 0u);
}

TEST(Profiler, SerialScopeAggregates)
{
    prof::Profiler profiler;
    ExecContext ctx;
    ctx.profiler = &profiler;
    for (int i = 0; i < 3; ++i) {
        prof::Scope scope(ctx, "kernel.a");
        EXPECT_TRUE(scope.active());
        scope.addRead(100);
        scope.addWrite(10);
    }
    const prof::ScopeStats stats = profiler.statsFor("kernel.a");
    EXPECT_EQ(stats.calls, 3);
    EXPECT_EQ(stats.bytesRead, 300u);
    EXPECT_EQ(stats.bytesWritten, 30u);
    EXPECT_GE(stats.seconds, 0.0);
    EXPECT_EQ(stats.maxThreads, 1);
}

TEST(Profiler, NestedScopesAggregateIndependently)
{
    prof::Profiler profiler;
    ExecContext ctx;
    ctx.profiler = &profiler;
    {
        prof::Scope outer(ctx, "layer");
        outer.addRead(1000);
        {
            prof::Scope inner(ctx, "layer.gemm");
            inner.addWrite(500);
        }
        {
            prof::Scope inner(ctx, "layer.softmax");
            inner.addRead(200);
        }
    }
    const auto snapshot = profiler.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot.at("layer").bytesRead, 1000u);
    EXPECT_EQ(snapshot.at("layer").calls, 1);
    EXPECT_EQ(snapshot.at("layer.gemm").bytesWritten, 500u);
    EXPECT_EQ(snapshot.at("layer.softmax").bytesRead, 200u);
}

TEST(Profiler, BytesOnlyScopeAddsNoTime)
{
    prof::Profiler profiler;
    ExecContext ctx;
    ctx.profiler = &profiler;
    {
        prof::Scope scope(ctx, "fused.ls",
                          prof::Scope::Kind::BytesOnly);
        scope.addWrite(4096);
    }
    const prof::ScopeStats stats = profiler.statsFor("fused.ls");
    EXPECT_EQ(stats.seconds, 0.0);
    EXPECT_EQ(stats.bytesWritten, 4096u);
    EXPECT_EQ(stats.calls, 1);
}

TEST(Profiler, ResetDropsEverything)
{
    prof::Profiler profiler;
    ExecContext ctx;
    ctx.profiler = &profiler;
    {
        prof::Scope scope(ctx, "kernel.a");
        scope.addRead(1);
    }
    EXPECT_EQ(profiler.snapshot().size(), 1u);
    profiler.reset();
    EXPECT_TRUE(profiler.snapshot().empty());
}

/**
 * The core race-freedom property: every chunk of a parallelFor
 * credits bytes from whichever thread runs it, and the merged total
 * must be exact — independent of scheduling — because each thread
 * owns a private padded slot. Run under tsan via scripts/ci.sh.
 */
TEST(Profiler, ParallelMergeIsDeterministic)
{
    constexpr int64_t kElems = 1 << 16;
    constexpr uint64_t kBytesPer = 4;
    for (int round = 0; round < 8; ++round) {
        prof::Profiler profiler;
        PooledContext p(4);
        p.ctx.profiler = &profiler;
        {
            prof::Scope scope(p.ctx, "kernel.parallel");
            parallelFor(p.ctx, 0, kElems, 256,
                        [&](int64_t begin, int64_t end) {
                            scope.addRead(uint64_t(end - begin) *
                                          kBytesPer);
                            scope.addWrite(uint64_t(end - begin));
                        });
        }
        const prof::ScopeStats stats =
            profiler.statsFor("kernel.parallel");
        EXPECT_EQ(stats.bytesRead, uint64_t(kElems) * kBytesPer);
        EXPECT_EQ(stats.bytesWritten, uint64_t(kElems));
        EXPECT_EQ(stats.calls, 1);
        EXPECT_EQ(stats.maxThreads, 4);
    }
}

TEST(Profiler, ScopesOnWorkerThreadsMerge)
{
    // A scope created *inside* a worker chunk (as nested kernels do)
    // must also account correctly: nested contexts are serial, so the
    // scope sees threads() == 1, but its slot vector still spans the
    // process-wide high-water mark so addRead from the worker's slot
    // stays in bounds.
    prof::Profiler profiler;
    PooledContext p(4);
    p.ctx.profiler = &profiler;
    parallelFor(p.ctx, 0, 8, 1, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            ExecContext serial;
            serial.profiler = &profiler;
            prof::Scope scope(serial, "kernel.nested");
            scope.addRead(16);
        }
    });
    const prof::ScopeStats stats = profiler.statsFor("kernel.nested");
    EXPECT_EQ(stats.calls, 8);
    EXPECT_EQ(stats.bytesRead, 128u);
}

TEST(Profiler, MaxThreadsTracksWidestScope)
{
    prof::Profiler profiler;
    {
        ExecContext serial;
        serial.profiler = &profiler;
        prof::Scope scope(serial, "kernel.a");
    }
    {
        prof::Profiler ignored;
        PooledContext p(2);
        p.ctx.profiler = &profiler;
        prof::Scope scope(p.ctx, "kernel.a");
    }
    EXPECT_EQ(profiler.statsFor("kernel.a").maxThreads, 2);
}

TEST(ThreadSlots, ExternalThreadIsSlotZero)
{
    EXPECT_EQ(currentThreadSlot(), 0);
    EXPECT_GE(maxThreadSlots(), 1);
}

TEST(ThreadSlots, WorkersGetDistinctSlotsWithinBounds)
{
    PooledContext p(4);
    const int high_water = maxThreadSlots();
    EXPECT_GE(high_water, 4);
    std::vector<int> slot_hits(size_t(high_water), 0);
    std::mutex mutex;
    parallelFor(p.ctx, 0, 64, 1, [&](int64_t, int64_t) {
        const int slot = currentThreadSlot();
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, high_water);
        std::lock_guard<std::mutex> lock(mutex);
        slot_hits[size_t(slot)] += 1;
    });
    int total = 0;
    for (int hits : slot_hits)
        total += hits;
    EXPECT_EQ(total, 64);
}

} // namespace
} // namespace softrec
