/**
 * @file
 * Tests of the BSR layout, its invariants, and the BSR matrix.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sparse/bsr.hpp"
#include "sparse/bsr_matrix.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

BsrLayout
diagonalLayout(int64_t n, int64_t bs)
{
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t i = 0; i < n; ++i)
        mask[size_t(i * n + i)] = true;
    return BsrLayout::fromMask(bs, n, n, mask);
}

TEST(BsrLayout, MaskRoundTrip)
{
    Rng rng(1);
    std::vector<bool> mask(48);
    for (size_t i = 0; i < mask.size(); ++i)
        mask[i] = rng.uniform() < 0.4;
    mask[0] = true; // ensure non-degenerate
    const auto layout = BsrLayout::fromMask(16, 6, 8, mask);
    EXPECT_EQ(layout.toMask(), mask);
}

TEST(BsrLayout, GeometryAccessors)
{
    const auto layout = diagonalLayout(4, 32);
    EXPECT_EQ(layout.blockSize(), 32);
    EXPECT_EQ(layout.blockRows(), 4);
    EXPECT_EQ(layout.blockCols(), 4);
    EXPECT_EQ(layout.rows(), 128);
    EXPECT_EQ(layout.cols(), 128);
    EXPECT_EQ(layout.nnzBlocks(), 4);
    EXPECT_EQ(layout.nnzElements(), 4 * 32 * 32);
    EXPECT_DOUBLE_EQ(layout.density(), 0.25);
}

TEST(BsrLayout, RowQueriesAndLookup)
{
    const auto layout = diagonalLayout(3, 8);
    for (int64_t r = 0; r < 3; ++r) {
        EXPECT_EQ(layout.rowNnzBlocks(r), 1);
        EXPECT_TRUE(layout.hasBlock(r, r));
        EXPECT_EQ(layout.blockIndex(r, r), r);
        for (int64_t c = 0; c < 3; ++c) {
            if (c != r) {
                EXPECT_FALSE(layout.hasBlock(r, c));
                EXPECT_EQ(layout.blockIndex(r, c), -1);
            }
        }
    }
    EXPECT_EQ(layout.blockCol(1), 1);
}

TEST(BsrLayout, ValidatesRowPtrConsistency)
{
    // rowPtr end must equal colIdx size.
    EXPECT_THROW(BsrLayout(8, 2, 2, {0, 1, 3}, {0}), std::logic_error);
    // rowPtr must start at zero.
    EXPECT_THROW(BsrLayout(8, 2, 2, {1, 1, 2}, {0, 1}),
                 std::logic_error);
    // Columns must be sorted and unique per row.
    EXPECT_THROW(BsrLayout(8, 1, 4, {0, 2}, {2, 1}), std::logic_error);
    EXPECT_THROW(BsrLayout(8, 1, 4, {0, 2}, {1, 1}), std::logic_error);
    // Column out of range.
    EXPECT_THROW(BsrLayout(8, 1, 2, {0, 1}, {2}), std::logic_error);
    // Valid layout does not throw.
    EXPECT_NO_THROW(BsrLayout(8, 2, 2, {0, 1, 2}, {0, 1}));
}

TEST(BsrLayout, OutOfRangeRowPanics)
{
    const auto layout = diagonalLayout(2, 8);
    EXPECT_THROW(layout.rowBegin(2), std::logic_error);
    EXPECT_THROW(layout.rowNnzBlocks(-1), std::logic_error);
}

TEST(AnalyzeSparsity, BalancedDiagonal)
{
    const auto stats = analyzeSparsity(diagonalLayout(8, 16));
    EXPECT_EQ(stats.nnzBlocks, 8);
    EXPECT_EQ(stats.minRowBlocks, 1);
    EXPECT_EQ(stats.maxRowBlocks, 1);
    EXPECT_DOUBLE_EQ(stats.meanRowBlocks, 1.0);
    EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
}

TEST(AnalyzeSparsity, DetectsStragglerRow)
{
    // Row 0 fully dense, other rows diagonal only.
    const int64_t n = 8;
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t c = 0; c < n; ++c)
        mask[size_t(c)] = true;
    for (int64_t r = 1; r < n; ++r)
        mask[size_t(r * n + r)] = true;
    const auto stats =
        analyzeSparsity(BsrLayout::fromMask(16, n, n, mask));
    EXPECT_EQ(stats.maxRowBlocks, 8);
    EXPECT_EQ(stats.minRowBlocks, 1);
    EXPECT_NEAR(stats.imbalance, 8.0 / (15.0 / 8.0), 1e-12);
}

TEST(BsrMatrix, DenseRoundTripKeepsNnzAndZerosElsewhere)
{
    const auto layout = diagonalLayout(3, 4);
    Tensor<Half> dense(Shape({12, 12}));
    Rng rng(2);
    fillNormal(dense, rng);
    const BsrMatrix sparse = BsrMatrix::fromDense(layout, dense);
    const Tensor<Half> back = sparse.toDense();
    for (int64_t i = 0; i < 12; ++i) {
        for (int64_t j = 0; j < 12; ++j) {
            if (i / 4 == j / 4) {
                EXPECT_EQ(back.at(i, j).bits(), dense.at(i, j).bits());
            } else {
                EXPECT_TRUE(back.at(i, j).isZero());
            }
        }
    }
}

TEST(BsrMatrix, ElementAccessByBlock)
{
    const auto layout = diagonalLayout(2, 4);
    BsrMatrix m(layout);
    m.at(1, 2, 3) = Half(5.0f);
    EXPECT_EQ(float(m.at(1, 2, 3)), 5.0f);
    EXPECT_EQ(float(m.blockData(1)[2 * 4 + 3]), 5.0f);
    m.clear();
    EXPECT_TRUE(m.at(1, 2, 3).isZero());
}

TEST(BsrMatrix, AccessOutOfRangePanics)
{
    // Accessor bounds are SOFTREC_CHECK: enforced only when compiled
    // with -DSOFTREC_CHECKED_BUILD=ON. test_checked_build forces the
    // define on and proves the checks fire in every configuration.
    if (!kCheckedBuild)
        GTEST_SKIP() << "bounds checks need SOFTREC_CHECKED_BUILD";
    const auto layout = diagonalLayout(2, 4);
    BsrMatrix m(layout);
    EXPECT_THROW(m.at(2, 0, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 4, 0), std::logic_error);
    EXPECT_THROW(m.blockData(5), std::logic_error);
}

TEST(BsrMatrix, FromDenseShapeMismatchPanics)
{
    const auto layout = diagonalLayout(2, 4);
    Tensor<Half> wrong(Shape({4, 8}));
    EXPECT_THROW(BsrMatrix::fromDense(layout, wrong), std::logic_error);
}

} // namespace
} // namespace softrec
