/**
 * @file
 * Tests of training-time recomposition (paper Section 6): the
 * attention backward reference against numerical gradients, and the
 * training-step schedules.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/training.hpp"
#include "sim/gpu.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

SdaConfig
smallConfig(bool causal = false)
{
    SdaConfig config;
    config.seqLen = 24;
    config.dHead = 8;
    config.causalMask = causal;
    config.subVector = 8;
    return config;
}

/** Scalar loss E = sum_ij W_ij O_ij for gradient checking. */
double
lossOf(const SdaConfig &config, const AttentionInputs &inputs,
       const Tensor<float> &weights)
{
    const Tensor<float> out = referenceDenseAttention(config, inputs);
    double loss = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i)
        loss += double(weights.at(i)) * double(out.at(i));
    return loss;
}

TEST(AttentionBackward, MatchesNumericalGradients)
{
    const SdaConfig config = smallConfig();
    AttentionInputs inputs = makeAttentionInputs(config);
    Rng rng(1);
    fillNormal(inputs.q, rng, 0.0, 0.5);
    fillNormal(inputs.k, rng, 0.0, 0.5);
    fillNormal(inputs.v, rng, 0.0, 0.5);

    Tensor<float> weights(Shape({config.seqLen, config.dHead}));
    for (int64_t i = 0; i < weights.numel(); ++i)
        weights.at(i) = float(rng.normal(0.0, 1.0));

    // dO = dE/dO = W for this loss.
    const AttentionGradients grads =
        referenceAttentionBackward(config, inputs, weights);

    // Central differences through each input tensor. fp16 inputs
    // can't be perturbed by eps directly, so perturb via bit-exact
    // half values and compare with matching tolerance.
    auto check = [&](Tensor<Half> &tensor, const Tensor<float> &grad,
                     const char *name) {
        Rng pick(42);
        for (int trial = 0; trial < 24; ++trial) {
            const int64_t idx =
                int64_t(pick.uniformInt(uint64_t(tensor.numel())));
            const float original = float(tensor.at(idx));
            const float eps = 2e-2f;
            tensor.at(idx) = Half(original + eps);
            const float hi = float(tensor.at(idx));
            const double loss_hi = lossOf(config, inputs, weights);
            tensor.at(idx) = Half(original - eps);
            const float lo = float(tensor.at(idx));
            const double loss_lo = lossOf(config, inputs, weights);
            tensor.at(idx) = Half(original);
            const double numeric =
                (loss_hi - loss_lo) / double(hi - lo);
            EXPECT_NEAR(grad.at(idx), numeric,
                        2e-2 + 0.05 * std::abs(numeric))
                << name << "[" << idx << "]";
        }
    };
    check(inputs.q, grads.dQ, "dQ");
    check(inputs.k, grads.dK, "dK");
    check(inputs.v, grads.dV, "dV");
}

TEST(AttentionBackward, CausalMaskZeroesFutureKeyGradients)
{
    const SdaConfig config = smallConfig(true);
    AttentionInputs inputs = makeAttentionInputs(config);
    Rng rng(2);
    fillNormal(inputs.q, rng, 0.0, 0.5);
    fillNormal(inputs.k, rng, 0.0, 0.5);
    fillNormal(inputs.v, rng, 0.0, 0.5);
    // Upstream gradient only on row 0, which attends solely to
    // position 0: all other K/V rows must receive zero gradient.
    Tensor<float> d_out(Shape({config.seqLen, config.dHead}));
    for (int64_t d = 0; d < config.dHead; ++d)
        d_out.at(0, d) = 1.0f;
    const AttentionGradients grads =
        referenceAttentionBackward(config, inputs, d_out);
    for (int64_t j = 1; j < config.seqLen; ++j) {
        for (int64_t d = 0; d < config.dHead; ++d) {
            EXPECT_EQ(grads.dV.at(j, d), 0.0f) << j;
            EXPECT_NEAR(grads.dK.at(j, d), 0.0f, 1e-7) << j;
        }
    }
}

TEST(TrainingSchedule, BaselineStoresBothMatrices)
{
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 2048;
    const auto sched = buildSdaTrainingSchedule(
        GpuSpec::a100(), config, Strategy::Baseline);
    EXPECT_EQ(sched.activations,
              ActivationPolicy::StoreScoresAndProbs);
    EXPECT_EQ(sched.activationBytes,
              2 * config.attentionMatrixBytes());
    EXPECT_EQ(sched.backward.size(), 5u); // dv, dp, softmax, dq, dk
    // The standalone softmax-backward kernel is present.
    bool has_softmax_bwd = false;
    for (const auto &prof : sched.backward)
        has_softmax_bwd |= prof.name == "bwd.softmax";
    EXPECT_TRUE(has_softmax_bwd);
}

TEST(TrainingSchedule, RecompositionHalvesActivationFootprint)
{
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 2048;
    const auto base = buildSdaTrainingSchedule(
        GpuSpec::a100(), config, Strategy::Baseline);
    const auto sdf = buildSdaTrainingSchedule(
        GpuSpec::a100(), config, Strategy::Fused);
    EXPECT_EQ(sdf.activations, ActivationPolicy::StoreProbsOnly);
    EXPECT_LT(sdf.activationBytes, base.activationBytes * 0.6);
    // No standalone softmax kernel anywhere under SDF.
    for (const auto &prof : sdf.all())
        EXPECT_NE(prof.category, KernelCategory::Softmax)
            << prof.name;
}

TEST(TrainingSchedule, FusedBackwardKeepsIrOnly)
{
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 2048;
    const auto sdf = buildSdaTrainingSchedule(
        GpuSpec::a100(), config, Strategy::Fused);
    int ir_kernels = 0, fused_gemms = 0;
    for (const auto &prof : sdf.backward) {
        if (prof.category == KernelCategory::SoftmaxIr)
            ++ir_kernels;
        if (prof.fusedPenalty > 1.0)
            ++fused_gemms;
    }
    EXPECT_EQ(ir_kernels, 1);
    EXPECT_EQ(fused_gemms, 4); // dv+gs, dp+pr, dq+sb, dk+sb
}

TEST(TrainingSchedule, ForwardMatchesInferencePlan)
{
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 2048;
    for (Strategy strategy : allStrategies()) {
        const auto train = buildSdaTrainingSchedule(
            GpuSpec::a100(), config, strategy);
        const auto infer =
            buildSdaSchedule(GpuSpec::a100(), config, strategy);
        ASSERT_EQ(train.forward.size(), infer.kernels.size());
        for (size_t i = 0; i < train.forward.size(); ++i)
            EXPECT_EQ(train.forward[i].name, infer.kernels[i].name);
    }
}

TEST(TrainingSchedule, SparseIsRejected)
{
    const BsrLayout layout = densePattern(512, 64);
    SdaConfig config;
    config.seqLen = 512;
    config.layout = &layout;
    EXPECT_THROW(buildSdaTrainingSchedule(GpuSpec::a100(), config,
                                          Strategy::Fused),
                 std::logic_error);
}

TEST(TrainingSchedule, FusedStepIsFasterEndToEnd)
{
    // The whole point: at L = 4096 the recomposed training step beats
    // the baseline step on time and activation memory.
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 4096;
    const GpuSpec spec = GpuSpec::a100();
    auto total = [&](Strategy strategy) {
        Gpu gpu(spec);
        for (const auto &prof :
             buildSdaTrainingSchedule(spec, config, strategy).all())
            gpu.launch(prof);
        return gpu.totalSeconds();
    };
    EXPECT_LT(total(Strategy::Fused), total(Strategy::Baseline));
}

} // namespace
} // namespace softrec
