/**
 * @file
 * Tests of the vectorized kernel substrate: the batch fp16<->fp32
 * conversions must be bit-for-bit identical between the scalar and
 * SIMD backends (including NaN payloads, infinities, subnormals, and
 * rounding boundaries), the packed-panel GEMM must match the naive
 * reference at ragged shapes under both backends, and kernels built
 * on the substrate must stay deterministic across thread counts.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "kernels/gemm.hpp"
#include "kernels/softmax_kernels.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Runs `body` under `backend`, restoring the previous backend. */
template <typename Fn>
void
withBackend(SimdBackend backend, Fn &&body)
{
    const SimdBackend prev = setSimdBackend(backend);
    body();
    setSimdBackend(prev);
}

/**
 * Adversarial fp32 inputs for floatToHalf: every special-case branch
 * of Half::fromFloat plus the RNE rounding boundaries.
 */
std::vector<float>
edgeFloats()
{
    const auto bits = [](uint32_t u) {
        float f;
        static_assert(sizeof(f) == sizeof(u));
        __builtin_memcpy(&f, &u, sizeof(f));
        return f;
    };
    return {
        0.0f, -0.0f, 1.0f, -1.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        -std::numeric_limits<float>::quiet_NaN(),
        bits(0x7f800001u), // signalling NaN, minimal payload
        bits(0xffc12345u), // quiet NaN with payload bits
        65504.0f,          // max finite half
        65519.0f,          // rounds down to 65504
        65520.0f,          // rounds up: overflow to +inf
        -65520.0f,
        6.103515625e-05f,  // min normal half (2^-14)
        5.960464477539063e-08f, // min subnormal half (2^-24)
        2.9802322387695312e-08f, // 2^-25: underflow boundary
        bits(0x33000001u), // just above 2^-25: smallest non-zero
        1.0009765625f,     // 1 + 2^-10: exactly representable
        1.00048828125f,    // 1 + 2^-11: RNE tie, rounds to even
        1.0014648437f,     // between steps: rounds to nearest
        3.14159265f, -2.71828182f, 1e-3f, -1e6f,
    };
}

TEST(BatchConvert, HalfToFloatAllBitPatternsMatchScalar)
{
    // Every binary16 bit pattern through both backends, including all
    // NaN payloads (the SIMD path must redo NaN chunks scalar).
    const int64_t n = 0x10000;
    std::vector<Half> src(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        src[size_t(i)] = Half::fromBits(uint16_t(i));
    std::vector<float> want(static_cast<size_t>(n)), got(static_cast<size_t>(n));
    halfToFloatScalar(src.data(), want.data(), n);
    withBackend(detectedSimdBackend(), [&] {
        halfToFloat(src.data(), got.data(), n);
    });
    for (int64_t i = 0; i < n; ++i) {
        uint32_t wb, gb;
        __builtin_memcpy(&wb, &want[size_t(i)], 4);
        __builtin_memcpy(&gb, &got[size_t(i)], 4);
        ASSERT_EQ(wb, gb) << "half bits=" << i;
    }
}

TEST(BatchConvert, FloatToHalfEdgeCasesMatchScalar)
{
    // Edge values in every lane position so each special case lands
    // in both aligned chunks and the scalar tail.
    const std::vector<float> edges = edgeFloats();
    std::vector<float> src;
    for (size_t rot = 0; rot < 8; ++rot)
        for (size_t i = 0; i < edges.size(); ++i)
            src.push_back(edges[(i + rot) % edges.size()]);
    const int64_t n = int64_t(src.size());
    std::vector<Half> want(static_cast<size_t>(n)), got(static_cast<size_t>(n));
    floatToHalfScalar(src.data(), want.data(), n);
    withBackend(detectedSimdBackend(), [&] {
        floatToHalf(src.data(), got.data(), n);
    });
    for (int64_t i = 0; i < n; ++i)
        ASSERT_EQ(want[size_t(i)].bits(), got[size_t(i)].bits())
            << "src=" << src[size_t(i)] << " i=" << i;
}

TEST(BatchConvert, RandomRoundTripMatchesScalarAtOddLengths)
{
    // Lengths 0..33 cover the vector body, the partial tail, and the
    // all-tail cases on both 8-wide (x86) and 4-wide (NEON) paths.
    Rng rng(11);
    for (int64_t n = 0; n <= 33; ++n) {
        std::vector<float> src(static_cast<size_t>(n));
        for (float &v : src)
            v = float(rng.normal(0.0, 100.0));
        std::vector<Half> hw(size_t(n) + 1), hg(size_t(n) + 1);
        std::vector<float> fw(size_t(n) + 1), fg(size_t(n) + 1);
        floatToHalfScalar(src.data(), hw.data(), n);
        halfToFloatScalar(hw.data(), fw.data(), n);
        withBackend(detectedSimdBackend(), [&] {
            floatToHalf(src.data(), hg.data(), n);
            halfToFloat(hg.data(), fg.data(), n);
        });
        for (int64_t i = 0; i < n; ++i) {
            ASSERT_EQ(hw[size_t(i)].bits(), hg[size_t(i)].bits())
                << "n=" << n << " i=" << i;
            ASSERT_EQ(fw[size_t(i)], fg[size_t(i)])
                << "n=" << n << " i=" << i;
        }
    }
}

TEST(SimdBackendApi, SetAndRestore)
{
    // The initial backend depends on SOFTREC_SIMD (off forces Scalar,
    // auto/unset detects), so only assert it is one of the two.
    const SimdBackend detected = detectedSimdBackend();
    const SimdBackend initial = simdBackend();
    EXPECT_TRUE(initial == detected || initial == SimdBackend::Scalar);
    EXPECT_EQ(setSimdBackend(SimdBackend::Scalar), initial);
    EXPECT_EQ(simdBackend(), SimdBackend::Scalar);
    EXPECT_EQ(setSimdBackend(detected), SimdBackend::Scalar);
    EXPECT_EQ(simdBackend(), detected);
    setSimdBackend(initial);
    EXPECT_EQ(simdBackend(), initial);
    EXPECT_STRNE(simdBackendName(detected), "");
}

// --- Packed-panel GEMM against the naive reference -----------------

/** Naive fp32 reference: C = op(A, B) with the same epilogue. */
Tensor<float>
referenceGemm(const GemmDesc &desc, const GemmOperands &ops)
{
    Tensor<float> out(Shape({desc.m, desc.n}));
    for (int64_t i = 0; i < desc.m; ++i) {
        for (int64_t j = 0; j < desc.n; ++j) {
            float acc = 0.0f;
            for (int64_t kk = 0; kk < desc.k; ++kk) {
                float a = float(ops.a->at(i, kk));
                if (desc.prologue.globalScale) {
                    a *= ops.gsFactors->at(
                        i, kk / desc.prologue.gsSubVector);
                }
                const float b = ops.transposeB
                    ? float(ops.b->at(j, kk))
                    : float(ops.b->at(kk, j));
                acc += a * b;
            }
            if (desc.epilogue.scale != 1.0)
                acc *= float(desc.epilogue.scale);
            if (desc.epilogue.bias)
                acc += ops.bias->at(j);
            out.at(i, j) = acc;
        }
    }
    return out;
}

TEST(PackedGemm, RaggedShapesMatchReferenceUnderBothBackends)
{
    // Shapes chosen so m, n, and k are all ragged against the tiles:
    // partial panels, partial strips, and partial K steps.
    const struct { int64_t m, n, k; bool transpose_b; } cases[] = {
        {1, 1, 1, false},   {7, 5, 3, false},  {33, 17, 21, false},
        {16, 8, 4, false},  {19, 23, 9, true}, {33, 17, 21, true},
    };
    int seed = 100;
    for (const auto &tc : cases) {
        for (const SimdBackend backend :
             {SimdBackend::Scalar, detectedSimdBackend()}) {
            Rng rng(uint64_t(seed++));
            GemmDesc desc;
            desc.m = tc.m;
            desc.n = tc.n;
            desc.k = tc.k;
            desc.tiling.tileM = 16;
            desc.tiling.tileN = 8;
            desc.tiling.tileK = 4;
            Tensor<Half> a(Shape({tc.m, tc.k}));
            Tensor<Half> b(tc.transpose_b ? Shape({tc.n, tc.k})
                                          : Shape({tc.k, tc.n}));
            fillNormal(a, rng, 0.0, 0.5);
            fillNormal(b, rng, 0.0, 0.5);
            GemmOperands ops;
            ops.a = &a;
            ops.b = &b;
            ops.transposeB = tc.transpose_b;
            Tensor<Half> c(Shape({tc.m, tc.n}));
            withBackend(backend, [&] {
                gemmRun(ExecContext(), desc, ops, c);
            });
            EXPECT_LT(maxAbsDiff(toFloat(c), referenceGemm(desc, ops)),
                      0.02)
                << "m=" << tc.m << " n=" << tc.n << " k=" << tc.k
                << " transposed=" << tc.transpose_b
                << " backend=" << simdBackendName(backend);
        }
    }
}

TEST(PackedGemm, FusedLsEpilogueMatchesUnfused)
{
    // The LS epilogue reuses the packed panels and converted rows;
    // its m'/d' must match running LS over the unfused scores.
    Rng rng(42);
    GemmDesc plain;
    plain.m = 29;
    plain.n = 24;
    plain.k = 16;
    plain.tiling.tileM = 16;
    plain.tiling.tileN = 8;
    plain.tiling.tileK = 4;
    plain.epilogue.scale = 0.25;
    Tensor<Half> a(Shape({plain.m, plain.k}));
    Tensor<Half> b(Shape({plain.n, plain.k}));
    fillNormal(a, rng, 0.0, 0.5);
    fillNormal(b, rng, 0.0, 0.5);
    GemmOperands ops;
    ops.a = &a;
    ops.b = &b;
    ops.transposeB = true;

    GemmDesc fused = plain;
    fused.epilogue.localSoftmax = true;
    const int64_t nsv = (plain.n + plain.tiling.tileN - 1) /
                        plain.tiling.tileN;
    Tensor<Half> scores(Shape({plain.m, plain.n}));
    Tensor<Half> x_prime(Shape({plain.m, plain.n}));
    Tensor<float> local_max(Shape({plain.m, nsv}));
    Tensor<float> local_sum(Shape({plain.m, nsv}));
    LsOutputs ls;
    ls.localMax = &local_max;
    ls.localSum = &local_sum;
    gemmRun(ExecContext(), plain, ops, scores);
    gemmRun(ExecContext(), fused, ops, x_prime, &ls);

    SoftmaxShape sm;
    sm.rows = plain.m;
    sm.cols = plain.n;
    sm.subVector = plain.tiling.tileN;
    Tensor<Half> want_x(Shape({plain.m, plain.n}));
    Tensor<float> want_max(Shape({plain.m, nsv}));
    Tensor<float> want_sum(Shape({plain.m, nsv}));
    lsRun(ExecContext(), sm, scores, want_x, want_max, want_sum);
    EXPECT_LT(maxAbsDiff(toFloat(x_prime), toFloat(want_x)), 0.02);
    EXPECT_LT(maxAbsDiff(local_max, want_max), 0.02);
    EXPECT_LT(maxAbsDiff(local_sum, want_sum), 0.02);
}

// --- Determinism across thread counts ------------------------------

/** Run fn under a context of `threads` and return its output. */
template <typename Fn>
Tensor<Half>
runWith(int threads, Fn &&fn)
{
    if (threads == 1)
        return fn(ExecContext());
    ThreadPool pool(threads);
    ExecContext ctx;
    ctx.pool = &pool;
    return fn(ctx);
}

TEST(PackedGemm, BitIdenticalAcrossThreadCounts)
{
    Rng rng(7);
    GemmDesc desc;
    desc.m = 61;
    desc.n = 37;
    desc.k = 29;
    desc.tiling.tileM = 16;
    desc.tiling.tileN = 8;
    desc.tiling.tileK = 4;
    Tensor<Half> a(Shape({desc.m, desc.k}));
    Tensor<Half> b(Shape({desc.k, desc.n}));
    fillNormal(a, rng, 0.0, 0.5);
    fillNormal(b, rng, 0.0, 0.5);
    GemmOperands ops;
    ops.a = &a;
    ops.b = &b;
    const auto run = [&](const ExecContext &ctx) {
        Tensor<Half> c(Shape({desc.m, desc.n}));
        gemmRun(ctx, desc, ops, c);
        return c;
    };
    const Tensor<Half> serial = runWith(1, run);
    for (int threads : {3, 7}) {
        const Tensor<Half> threaded = runWith(threads, run);
        for (int64_t i = 0; i < serial.numel(); ++i)
            ASSERT_EQ(serial.data()[i].bits(),
                      threaded.data()[i].bits())
                << "threads=" << threads << " elem=" << i;
    }
}

TEST(RowSoftmax, BitIdenticalAcrossThreadCountsAndBackends)
{
    Rng rng(13);
    SoftmaxShape desc;
    desc.rows = 37;
    desc.cols = 129; // ragged against the 8-wide conversion chunks
    Tensor<Half> in(Shape({desc.rows, desc.cols}));
    fillNormal(in, rng, 0.0, 2.0);
    const auto run = [&](const ExecContext &ctx) {
        Tensor<Half> out(Shape({desc.rows, desc.cols}));
        rowSoftmaxRun(ctx, desc, in, out);
        return out;
    };
    for (const SimdBackend backend :
         {SimdBackend::Scalar, detectedSimdBackend()}) {
        withBackend(backend, [&] {
            const Tensor<Half> serial = runWith(1, run);
            for (int threads : {3, 7}) {
                const Tensor<Half> threaded = runWith(threads, run);
                for (int64_t i = 0; i < serial.numel(); ++i)
                    ASSERT_EQ(serial.data()[i].bits(),
                              threaded.data()[i].bits())
                        << "backend=" << simdBackendName(backend)
                        << " threads=" << threads << " elem=" << i;
            }
        });
    }
}

} // namespace
} // namespace softrec
