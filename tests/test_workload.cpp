/**
 * @file
 * Tests of the synthetic long-document workload generator.
 */

#include <gtest/gtest.h>

#include "workload/corpus.hpp"

namespace softrec {
namespace {

TEST(Corpus, DeterministicPerSeed)
{
    CorpusConfig config;
    config.numDocuments = 8;
    config.meanTokens = 1000;
    const SyntheticCorpus a(config), b(config);
    ASSERT_EQ(a.documents().size(), 8u);
    for (size_t d = 0; d < 8; ++d)
        EXPECT_EQ(a.documents()[d].tokens, b.documents()[d].tokens);
    config.seed = 999;
    const SyntheticCorpus c(config);
    EXPECT_NE(a.documents()[0].tokens, c.documents()[0].tokens);
}

TEST(Corpus, LengthsWithinBounds)
{
    CorpusConfig config;
    config.numDocuments = 64;
    config.minTokens = 256;
    config.maxTokens = 9000;
    const SyntheticCorpus corpus(config);
    for (const Document &doc : corpus.documents()) {
        EXPECT_GE(doc.tokens.size(), 256u);
        EXPECT_LE(doc.tokens.size(), 9000u);
    }
    EXPECT_GT(corpus.averageLength(), 256.0);
    EXPECT_LT(corpus.averageLength(), 9000.0);
}

TEST(Corpus, LongDocumentsMotivateLongSequences)
{
    // The paper's premise: many documents exceed BERT's classic 512
    // tokens, so truncating at larger L keeps more of them intact.
    CorpusConfig config;
    config.numDocuments = 128;
    const SyntheticCorpus corpus(config);
    EXPECT_GT(corpus.fractionLongerThan(512), 0.5);
    EXPECT_GT(corpus.fractionLongerThan(512),
              corpus.fractionLongerThan(4096));
}

TEST(Corpus, TokensWithinVocabulary)
{
    CorpusConfig config;
    config.numDocuments = 4;
    config.vocabSize = 1000;
    const SyntheticCorpus corpus(config);
    for (const Document &doc : corpus.documents())
        for (int32_t token : doc.tokens) {
            ASSERT_GE(token, 0);
            ASSERT_LT(token, 1000);
        }
}

TEST(Corpus, ZipfSkewMakesLowIdsCommon)
{
    CorpusConfig config;
    config.numDocuments = 16;
    config.meanTokens = 4000;
    config.vocabSize = 10000;
    const SyntheticCorpus corpus(config);
    int64_t low = 0, total = 0;
    for (const Document &doc : corpus.documents()) {
        for (int32_t token : doc.tokens) {
            low += token < 100;
            ++total;
        }
    }
    // Top-1% of the vocabulary supplies far more than 1% of tokens.
    EXPECT_GT(double(low) / double(total), 0.2);
}

TEST(Corpus, BatchTruncatesAndPads)
{
    CorpusConfig config;
    config.numDocuments = 4;
    config.minTokens = 300;
    config.maxTokens = 600;
    const SyntheticCorpus corpus(config);
    const auto batch = corpus.makeBatch(6, 512, 0, -1);
    ASSERT_EQ(batch.size(), 6u);
    for (size_t b = 0; b < 6; ++b) {
        ASSERT_EQ(batch[b].size(), 512u);
        const auto &doc = corpus.documents()[b % 4];
        const size_t copy = std::min<size_t>(512, doc.tokens.size());
        for (size_t i = 0; i < copy; ++i)
            ASSERT_EQ(batch[b][i], doc.tokens[i]) << b << ":" << i;
        for (size_t i = copy; i < 512; ++i)
            ASSERT_EQ(batch[b][i], -1);
    }
}

TEST(AttentionScores, StatisticsAndOutliers)
{
    Rng rng(3);
    const Tensor<Half> scores =
        makeAttentionScores(rng, 64, 256, 2.0, 0.02, 10.0);
    double sum = 0.0;
    int64_t big = 0;
    for (int64_t i = 0; i < scores.numel(); ++i) {
        const double v = float(scores.at(i));
        sum += v;
        big += std::abs(v) > 6.0;
    }
    EXPECT_NEAR(sum / double(scores.numel()), 0.0, 0.1);
    // Outliers exist but are rare.
    EXPECT_GT(big, 0);
    EXPECT_LT(double(big) / double(scores.numel()), 0.1);
}

} // namespace
} // namespace softrec
