/**
 * @file
 * Determinism suite: every functional entry point must produce
 * bit-identical fp16 outputs for any thread count. Chunk boundaries
 * are a pure function of the iteration range and each chunk keeps the
 * serial accumulation order, so 1-, 2- and 8-thread runs of the same
 * problem must agree to the last bit — not merely to a tolerance.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "kernels/fused_mha.hpp"
#include "model/engine.hpp"
#include "model/functional_layer.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Thread counts every case runs under (1 = serial context). */
const std::vector<int> kThreadCounts = {1, 2, 8};

/** Run fn under a context of `threads` and return its output. */
template <typename Fn>
Tensor<Half>
runWith(int threads, Fn &&fn)
{
    if (threads == 1)
        return fn(ExecContext());
    ThreadPool pool(threads);
    ExecContext ctx;
    ctx.pool = &pool;
    return fn(ctx);
}

void
expectBitIdentical(const Tensor<Half> &a, const Tensor<Half> &b,
                   const char *what, int threads)
{
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i) {
        ASSERT_EQ(a.at(i).bits(), b.at(i).bits())
            << what << ": element " << i << " differs at " << threads
            << " threads";
    }
}

/** Check fn(ctx) is bit-identical across all of kThreadCounts. */
template <typename Fn>
void
expectDeterministic(const char *what, Fn &&fn)
{
    const Tensor<Half> serial = runWith(1, fn);
    for (int threads : kThreadCounts) {
        if (threads == 1)
            continue;
        const Tensor<Half> parallel = runWith(threads, fn);
        expectBitIdentical(serial, parallel, what, threads);
    }
}

AttentionInputs
randomInputs(const SdaConfig &config, uint64_t seed)
{
    AttentionInputs inputs = makeAttentionInputs(config);
    Rng rng(seed);
    fillNormal(inputs.q, rng, 0.0, 0.8);
    fillNormal(inputs.k, rng, 0.0, 0.8);
    fillNormal(inputs.v, rng, 0.0, 0.8);
    return inputs;
}

TEST(ParallelDeterminism, DenseAttentionAllStrategies)
{
    SdaConfig config;
    config.seqLen = 96;
    config.dHead = 32;
    config.subVector = 16;
    config.attnTiling.tileM = 16;
    config.attnTiling.tileN = 16;
    config.attnTiling.tileK = 16;
    const AttentionInputs inputs = randomInputs(config, 11);
    for (Strategy strategy : allStrategies()) {
        expectDeterministic(
            strategyName(strategy),
            [&](const ExecContext &ctx) {
                return runAttention(ctx, config, inputs, strategy);
            });
    }
}

TEST(ParallelDeterminism, SparseAttentionAllStrategies)
{
    BigBirdParams params;
    params.blockSize = 16;
    params.windowBlocks = 1;
    params.globalBlocks = 1;
    params.randomBlocks = 1;
    params.seed = 5;
    const BsrLayout layout = bigBirdPattern(128, params);

    SdaConfig config;
    config.seqLen = 128;
    config.dHead = 16;
    config.layout = &layout;
    config.subVector = 16;
    const AttentionInputs inputs = randomInputs(config, 13);
    for (Strategy strategy : allStrategies()) {
        expectDeterministic(
            strategyName(strategy),
            [&](const ExecContext &ctx) {
                return runAttention(ctx, config, inputs, strategy);
            });
    }
}

TEST(ParallelDeterminism, FusedMha)
{
    FusedMhaDesc desc;
    desc.seqLen = 128;
    desc.dHead = 32;
    desc.scale = 1.0 / std::sqrt(32.0);
    desc.causalMask = true;
    Rng rng(17);
    Tensor<Half> q(Shape({128, 32})), k(q.shape()), v(q.shape());
    fillNormal(q, rng, 0.0, 0.8);
    fillNormal(k, rng, 0.0, 0.8);
    fillNormal(v, rng, 0.0, 0.8);
    expectDeterministic("fusedMha", [&](const ExecContext &ctx) {
        Tensor<Half> out(q.shape());
        fusedMhaRun(ctx, desc, q, k, v, out);
        return out;
    });
}

TEST(ParallelDeterminism, EncoderLayer)
{
    FunctionalLayerConfig config;
    config.dModel = 32;
    config.numHeads = 4;
    config.dFf = 64;
    config.strategy = Strategy::Fused;
    config.subVector = 16;
    Rng wrng(19);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    Tensor<Half> input(Shape({64, 32}));
    Rng irng(23);
    fillNormal(input, irng, 0.0, 1.0);
    expectDeterministic("encoderLayer", [&](const ExecContext &ctx) {
        return runEncoderLayer(ctx, config, weights, input);
    });
}

TEST(ParallelDeterminism, InferenceSweepAlignsWithSerialRuns)
{
    const GpuSpec spec = GpuSpec::a100();
    ModelConfig model = ModelConfig::bertLarge();
    std::vector<RunConfig> runs;
    for (Strategy strategy : allStrategies()) {
        RunConfig run;
        run.strategy = strategy;
        run.seqLen = 1024;
        run.batch = 2;
        runs.push_back(run);
    }
    ThreadPool pool(4);
    ExecContext ctx;
    ctx.pool = &pool;
    const auto sweep = runInferenceSweep(ctx, spec, model, runs);
    ASSERT_EQ(sweep.size(), runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
        const InferenceResult serial =
            runInference(spec, model, runs[i]);
        EXPECT_EQ(sweep[i].strategy, runs[i].strategy);
        EXPECT_DOUBLE_EQ(sweep[i].seconds, serial.seconds);
        EXPECT_EQ(sweep[i].dramReadBytes, serial.dramReadBytes);
        EXPECT_EQ(sweep[i].dramWriteBytes, serial.dramWriteBytes);
        EXPECT_EQ(sweep[i].kernelLaunches, serial.kernelLaunches);
    }
}

} // namespace
} // namespace softrec
