/**
 * @file
 * Tests of the trace-driven cache model, including the
 * cross-validation of the closed-form operand-traffic rules the GEMM
 * profiles use (kernel_common.hpp) against replayed address traces.
 */

#include <gtest/gtest.h>

#include "kernels/kernel_common.hpp"
#include "sim/cache_model.hpp"

namespace softrec {
namespace {

TEST(CacheModel, ColdMissesThenHits)
{
    CacheModel cache(4096, 64, 4);
    cache.readRange(0, 1024); // 16 lines
    EXPECT_EQ(cache.stats().misses(), 16u);
    EXPECT_EQ(cache.stats().hits, 0u);
    cache.readRange(0, 1024); // resident now
    EXPECT_EQ(cache.stats().misses(), 16u);
    EXPECT_EQ(cache.stats().hits, 16u);
}

TEST(CacheModel, LruEvictionWithinSet)
{
    // Direct-mapped-ish: 2 ways, 2 sets, 64 B lines = 256 B cache.
    CacheModel cache(256, 64, 2);
    // Three lines mapping to set 0: 0, 128... set = (addr/64) % 2.
    cache.read(0);   // set 0, way 0
    cache.read(128); // set 0, way 1
    cache.read(256); // set 0: evicts LRU (addr 0)
    cache.read(0);   // miss again
    EXPECT_EQ(cache.stats().misses(), 4u);
    // 128 was most recently... 256 evicted 0; reading 0 evicted 128.
    cache.read(256); // still resident (hit)
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheModel, WritebacksOnlyForDirtyLines)
{
    CacheModel cache(256, 64, 2);
    cache.write(0);
    cache.read(128);
    cache.read(256); // evicts dirty line 0 -> writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.flush(); // no dirty lines left except none
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheModel, FlushWritesDirtyLines)
{
    CacheModel cache(4096, 64, 4);
    cache.writeRange(0, 512); // 8 dirty lines
    cache.flush();
    EXPECT_EQ(cache.stats().writebacks, 8u);
}

TEST(CacheModel, ResetClearsEverything)
{
    CacheModel cache(4096, 64, 4);
    cache.readRange(0, 4096);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    cache.read(0);
    EXPECT_EQ(cache.stats().misses(), 1u);
}

TEST(CacheModel, InvalidGeometryPanics)
{
    EXPECT_THROW(CacheModel(4096, 60, 4), std::logic_error); // !pow2
    EXPECT_THROW(CacheModel(64, 64, 4), std::logic_error);   // tiny
}

// ---- cross-validation of the analytic traffic rules ----

/** Analytic GEMM read traffic as the profile formulas compute it. */
uint64_t
analyticReads(int64_t m, int64_t n, int64_t k, int64_t tile_m,
              int64_t tile_n, uint64_t cache_bytes)
{
    const uint64_t a_bytes = uint64_t(m * k) * kFp16Bytes;
    const uint64_t b_bytes = uint64_t(k * n) * kFp16Bytes;
    const int64_t tiles_m = ceilDiv(m, tile_m);
    const int64_t tiles_n = ceilDiv(n, tile_n);
    const uint64_t a_strip = uint64_t(tile_m * k) * kFp16Bytes;
    const int64_t a_passes =
        a_strip <= uint64_t(0.8 * double(cache_bytes)) ? 1 : tiles_n;
    return operandDramBytes(a_bytes, a_passes, cache_bytes) +
           operandDramBytes(b_bytes, tiles_m, cache_bytes);
}

TEST(TrafficRuleValidation, ResidentOperandsReadOnce)
{
    // Everything fits: the trace and the rule must both say "each
    // operand fetched exactly once".
    const int64_t m = 128, n = 128, k = 64;
    CacheModel cache(1 << 20, 64, 16); // 1 MiB: far larger than data
    const CacheStats stats =
        traceTiledGemm(cache, m, n, k, 32, 32, 16);
    const uint64_t traced_reads = stats.dramReadBytes(64);
    const uint64_t expected =
        uint64_t(m * k + k * n) * kFp16Bytes;
    EXPECT_EQ(traced_reads, expected);
    EXPECT_EQ(analyticReads(m, n, k, 32, 32, 1 << 20), expected);
    // Output written exactly once.
    EXPECT_EQ(stats.dramWriteBytes(64), uint64_t(m * n) * kFp16Bytes);
}

TEST(TrafficRuleValidation, StreamingOperandReReadWhenCacheTooSmall)
{
    // B (k x n) much larger than the cache: the trace re-fetches it
    // once per tile row, which is what the whole-operand rule says.
    const int64_t m = 256, n = 256, k = 256;
    const uint64_t cache_bytes = 16 * 1024; // B = 128 KiB >> 16 KiB
    CacheModel cache(cache_bytes, 64, 8);
    const CacheStats stats =
        traceTiledGemm(cache, m, n, k, 64, 64, 32);
    const uint64_t traced = stats.dramReadBytes(64);
    const uint64_t analytic =
        analyticReads(m, n, k, 64, 64, cache_bytes);
    // The closed form should land within ~20% of the trace.
    EXPECT_GT(double(traced), double(analytic) * 0.8);
    EXPECT_LT(double(traced), double(analytic) * 1.2);
    // And both must far exceed the cold-miss floor.
    const uint64_t floor_bytes =
        uint64_t(m * k + k * n) * kFp16Bytes;
    EXPECT_GT(traced, floor_bytes * 3);
}

TEST(TrafficRuleValidation, StripReuseKeepsLhsSinglePass)
{
    // A's strip (tile_m x k) fits comfortably even though A as a
    // whole is bigger than the cache-residency threshold for B-style
    // reuse; the trace must show A fetched ~once.
    const int64_t m = 512, n = 256, k = 64;
    const uint64_t cache_bytes = 32 * 1024;
    // A = 64 KiB total, strip = 32 x 64 x 2 = 4 KiB; B = 32 KiB.
    CacheModel cache(cache_bytes, 64, 8);
    const CacheStats stats =
        traceTiledGemm(cache, m, n, k, 32, 64, 32);
    const uint64_t traced = stats.dramReadBytes(64);
    const uint64_t a_bytes = uint64_t(m * k) * kFp16Bytes;
    const uint64_t b_bytes = uint64_t(k * n) * kFp16Bytes;
    // B gets re-read per tile row (16 rows) since it doesn't stay
    // fully resident next to A's strips; A stays ~single-pass. Allow
    // the band between "A once + B once" and "A once + B every row".
    EXPECT_GT(traced, a_bytes + b_bytes);
    EXPECT_LT(traced, a_bytes * 2 + b_bytes * 16);
}

TEST(TrafficRuleValidation, LargerCacheNeverIncreasesTraffic)
{
    const int64_t m = 256, n = 256, k = 128;
    uint64_t previous = UINT64_MAX;
    for (uint64_t cache_bytes : {8u * 1024, 32u * 1024, 256u * 1024}) {
        CacheModel cache(cache_bytes, 64, 8);
        const CacheStats stats =
            traceTiledGemm(cache, m, n, k, 64, 64, 32);
        const uint64_t traced = stats.dramReadBytes(64);
        EXPECT_LE(traced, previous);
        previous = traced;
    }
}

} // namespace
} // namespace softrec
