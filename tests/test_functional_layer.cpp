/**
 * @file
 * Tests of the functional encoder layer: strategy equivalence on a
 * complete transformer layer, LayerNorm statistics, causal masking,
 * and shape checking.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "model/functional_layer.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

FunctionalLayerConfig
smallConfig(Strategy strategy)
{
    FunctionalLayerConfig config;
    config.dModel = 32;
    config.numHeads = 4;
    config.dFf = 64;
    config.strategy = strategy;
    config.subVector = 16;
    return config;
}

Tensor<Half>
randomInput(int64_t rows, int64_t d_model, uint64_t seed)
{
    Tensor<Half> input(Shape({rows, d_model}));
    Rng rng(seed);
    fillNormal(input, rng, 0.0, 1.0);
    return input;
}

TEST(FunctionalLayer, StrategiesAgreeOnFullLayer)
{
    Rng wrng(1);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(64, 32, 2);

    const auto baseline = toFloat(runEncoderLayer(execCtx(),
        smallConfig(Strategy::Baseline), weights, input));
    const auto sd = toFloat(runEncoderLayer(execCtx(),
        smallConfig(Strategy::Decomposed), weights, input));
    const auto sdf = toFloat(runEncoderLayer(execCtx(),
        smallConfig(Strategy::Fused), weights, input));

    // The LayerNorms re-normalize any accumulated fp16 noise, so the
    // full layer agrees tightly across strategies.
    EXPECT_LT(maxAbsDiff(baseline, sd), 2e-2);
    EXPECT_LT(maxAbsDiff(baseline, sdf), 2e-2);
}

TEST(FunctionalLayer, OutputIsLayerNormalized)
{
    Rng wrng(3);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(16, 32, 4);
    const Tensor<Half> out = runEncoderLayer(execCtx(),
        smallConfig(Strategy::Fused), weights, input);
    // gamma = 1, beta = 0: every output row has mean ~0, stddev ~1.
    for (int64_t i = 0; i < 16; ++i) {
        double mean = 0.0, var = 0.0;
        for (int64_t j = 0; j < 32; ++j)
            mean += float(out.at(i, j));
        mean /= 32.0;
        for (int64_t j = 0; j < 32; ++j) {
            const double d = float(out.at(i, j)) - mean;
            var += d * d;
        }
        var /= 32.0;
        EXPECT_NEAR(mean, 0.0, 0.02);
        EXPECT_NEAR(std::sqrt(var), 1.0, 0.05);
    }
}

TEST(FunctionalLayer, CausalVariantRunsAndAgrees)
{
    Rng wrng(5);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(48, 32, 6);
    FunctionalLayerConfig base = smallConfig(Strategy::Baseline);
    base.causalMask = true;
    FunctionalLayerConfig fused = smallConfig(Strategy::Fused);
    fused.causalMask = true;
    EXPECT_LT(maxAbsDiff(
                  toFloat(runEncoderLayer(execCtx(), base, weights, input)),
                  toFloat(runEncoderLayer(execCtx(), fused, weights, input))),
              2e-2);
}

TEST(FunctionalLayer, CausalRowZeroSeesOnlyItself)
{
    // With a causal mask, changing a later token must not change
    // output row 0.
    Rng wrng(7);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    Tensor<Half> input = randomInput(16, 32, 8);
    FunctionalLayerConfig config = smallConfig(Strategy::Fused);
    config.causalMask = true;
    const Tensor<Half> before =
        runEncoderLayer(execCtx(), config, weights, input);
    for (int64_t j = 0; j < 32; ++j)
        input.at(15, j) = Half(float(input.at(15, j)) + 3.0f);
    const Tensor<Half> after = runEncoderLayer(execCtx(), config, weights, input);
    for (int64_t j = 0; j < 32; ++j)
        EXPECT_EQ(before.at(0, j).bits(), after.at(0, j).bits());
    // But the perturbed row itself changes.
    bool changed = false;
    for (int64_t j = 0; j < 32; ++j)
        changed |= before.at(15, j).bits() != after.at(15, j).bits();
    EXPECT_TRUE(changed);
}

TEST(FunctionalLayer, Deterministic)
{
    Rng wrng(9);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(24, 32, 10);
    const auto a = runEncoderLayer(execCtx(), smallConfig(Strategy::Decomposed),
                                   weights, input);
    const auto b = runEncoderLayer(execCtx(), smallConfig(Strategy::Decomposed),
                                   weights, input);
    EXPECT_EQ(maxAbsDiff(toFloat(a), toFloat(b)), 0.0);
}

TEST(FunctionalLayer, ShapeMismatchPanics)
{
    Rng wrng(11);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> bad = randomInput(16, 48, 12);
    EXPECT_THROW(runEncoderLayer(execCtx(), smallConfig(Strategy::Baseline),
                                 weights, bad),
                 std::logic_error);
}

TEST(FunctionalLayer, BlockSparseAttentionStrategiesAgree)
{
    BigBirdParams params;
    params.blockSize = 16;
    params.windowBlocks = 1;
    params.globalBlocks = 1;
    params.randomBlocks = 1;
    const BsrLayout layout = bigBirdPattern(64, params);

    Rng wrng(13);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(64, 32, 14);

    auto run_with = [&](Strategy strategy) {
        FunctionalLayerConfig config = smallConfig(strategy);
        config.layout = &layout;
        return toFloat(runEncoderLayer(execCtx(), config, weights, input));
    };
    const auto baseline = run_with(Strategy::Baseline);
    EXPECT_LT(maxAbsDiff(baseline, run_with(Strategy::Decomposed)),
              2e-2);
    EXPECT_LT(maxAbsDiff(baseline, run_with(Strategy::Fused)), 2e-2);
}

TEST(FunctionalLayer, SparseDiffersFromDenseButStaysNormalized)
{
    const BsrLayout layout = bigBirdPattern(
        64, BigBirdParams{16, 1, 1, 0, 5});
    Rng wrng(15);
    const auto weights = EncoderLayerWeights::random(32, 64, wrng);
    const Tensor<Half> input = randomInput(64, 32, 16);

    FunctionalLayerConfig dense = smallConfig(Strategy::Fused);
    FunctionalLayerConfig sparse = dense;
    sparse.layout = &layout;
    const auto out_dense =
        toFloat(runEncoderLayer(execCtx(), dense, weights, input));
    const auto out_sparse =
        toFloat(runEncoderLayer(execCtx(), sparse, weights, input));
    // Restricting attention changes the answer...
    EXPECT_GT(maxAbsDiff(out_dense, out_sparse), 1e-3);
    // ...but the LayerNorm still standardizes every row.
    for (int64_t i = 0; i < 4; ++i) {
        double mean = 0.0;
        for (int64_t j = 0; j < 32; ++j)
            mean += out_sparse.at(i, j);
        EXPECT_NEAR(mean / 32.0, 0.0, 0.02);
    }
}

} // namespace
} // namespace softrec
