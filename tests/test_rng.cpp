/**
 * @file
 * Tests of the deterministic RNG and its distributions.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace softrec {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        ++counts[size_t(rng.uniformInt(10))];
    for (int c : counts) {
        EXPECT_GT(c, trials / 10 * 0.9);
        EXPECT_LT(c, trials / 10 * 1.1);
    }
}

TEST(Rng, UniformIntOneIsAlwaysZero)
{
    Rng rng(10);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(12);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 0.5);
    EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(13);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[size_t(rng.zipf(100, 1.2))];
    // Rank 0 must dominate rank 50 heavily at s = 1.2.
    EXPECT_GT(counts[0], counts[50] * 10);
    // All ranks in range.
    int total = 0;
    for (int c : counts)
        total += c;
    EXPECT_EQ(total, 50000);
}

TEST(Rng, ZipfZeroExponentIsUniform)
{
    Rng rng(14);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[size_t(rng.zipf(10, 0.0))];
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 500);
}

TEST(Rng, ZipfCacheSurvivesParameterChange)
{
    Rng rng(15);
    (void)rng.zipf(10, 1.0);
    (void)rng.zipf(20, 1.0); // re-tabulate
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(rng.zipf(20, 1.0), 20u);
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(rng.zipf(10, 2.0), 10u); // re-tabulate again
}

TEST(Rng, SampleWithoutReplacementDistinctSorted)
{
    Rng rng(16);
    for (int trial = 0; trial < 50; ++trial) {
        const auto picks = rng.sampleWithoutReplacement(100, 10);
        ASSERT_EQ(picks.size(), 10u);
        std::set<uint64_t> unique(picks.begin(), picks.end());
        EXPECT_EQ(unique.size(), 10u);
        EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
        for (uint64_t p : picks)
            EXPECT_LT(p, 100u);
    }
}

TEST(Rng, SampleAllElements)
{
    Rng rng(17);
    const auto picks = rng.sampleWithoutReplacement(8, 8);
    ASSERT_EQ(picks.size(), 8u);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(picks[i], i);
}

TEST(Rng, SampleZero)
{
    Rng rng(18);
    EXPECT_TRUE(rng.sampleWithoutReplacement(5, 0).empty());
}

/** Determinism across distribution types, parameterized by seed. */
class RngDeterminism : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RngDeterminism, FullSequenceReproducible)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.uniform(), b.uniform());
        EXPECT_EQ(a.normal(), b.normal());
        EXPECT_EQ(a.uniformInt(1000), b.uniformInt(1000));
        EXPECT_EQ(a.zipf(64, 1.1), b.zipf(64, 1.1));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminism,
                         ::testing::Values(0ULL, 1ULL, 42ULL,
                                           0xdeadbeefULL,
                                           0xffffffffffffffffULL));

} // namespace
} // namespace softrec
