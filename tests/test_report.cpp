/**
 * @file
 * Tests of the timeline reporting module.
 */

#include <gtest/gtest.h>

#include "core/recomposition.hpp"
#include "sim/report.hpp"

namespace softrec {
namespace {

Gpu
runSampleSda()
{
    Gpu gpu(GpuSpec::a100());
    SdaConfig config;
    config.heads = 16;
    config.seqLen = 2048;
    const auto sched = buildSdaSchedule(GpuSpec::a100(), config,
                                        Strategy::Baseline);
    // Launch the block twice to exercise the repeat collapsing.
    for (int round = 0; round < 2; ++round)
        for (const KernelProfile &prof : sched.kernels)
            gpu.launch(prof);
    return gpu;
}

TEST(Report, TimelineNamesAndShares)
{
    const Gpu gpu = runSampleSda();
    const std::string out = renderTimeline(gpu).render();
    EXPECT_NE(out.find("sda.qk"), std::string::npos);
    EXPECT_NE(out.find("sda.softmax"), std::string::npos);
    EXPECT_NE(out.find("sda.av"), std::string::npos);
    EXPECT_NE(out.find("memory"), std::string::npos);
    EXPECT_NE(out.find("blk/SM"), std::string::npos);
}

TEST(Report, ConsecutiveIdenticalLaunchesCollapse)
{
    Gpu gpu(GpuSpec::a100());
    KernelProfile prof;
    prof.name = "repeat.me";
    prof.geom.numBlocks = 1024;
    prof.geom.block.threads = 256;
    prof.dramReadBytes = 1 << 20;
    for (int i = 0; i < 24; ++i)
        gpu.launch(prof);
    const std::string out = renderTimeline(gpu).render();
    // One row with count 24, not 24 rows.
    EXPECT_NE(out.find("| 24 "), std::string::npos);
    EXPECT_EQ(out.find("repeat.me"), out.rfind("repeat.me"));
}

TEST(Report, SummaryNamesDominantCategory)
{
    const Gpu gpu = runSampleSda();
    const std::string summary = summarizeRun(gpu);
    EXPECT_NE(summary.find("kernels"), std::string::npos);
    // The SDA block at L = 2048 is softmax- or matmul-dominated.
    const bool mentions_dominant =
        summary.find("Softmax") != std::string::npos ||
        summary.find("MatMul(SDA)") != std::string::npos;
    EXPECT_TRUE(mentions_dominant) << summary;
}

TEST(Report, CategoriesTableCoversAllBuckets)
{
    const Gpu gpu = runSampleSda();
    const std::string out = renderCategories(gpu).render();
    EXPECT_NE(out.find("Softmax"), std::string::npos);
    EXPECT_NE(out.find("MatMul(SDA)"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos); // shares rendered
}

TEST(Report, EmptyRunDoesNotDivideByZero)
{
    Gpu gpu(GpuSpec::t4());
    EXPECT_NO_THROW(renderTimeline(gpu).render());
    EXPECT_NO_THROW(renderCategories(gpu).render());
    EXPECT_NO_THROW(summarizeRun(gpu));
}

TEST(Roofline, SoftmaxIsMemoryBoundGemmIsNot)
{
    const Gpu gpu = runSampleSda();
    RooflinePoint softmax_point{}, qk_point{};
    for (const LaunchRecord &rec : gpu.timeline()) {
        if (rec.profile.name == "sda.softmax")
            softmax_point = rooflineOf(gpu.spec(), rec);
        if (rec.profile.name == "sda.qk")
            qk_point = rooflineOf(gpu.spec(), rec);
    }
    // The paper's Section 2.3 numbers: softmax sits at ~2.5 FLOP/B,
    // far left of the ridge; the QK^T GEMM sits far right of the
    // CUDA ridge and is compute-heavy.
    EXPECT_LT(softmax_point.operationalIntensity, 5.0);
    EXPECT_TRUE(softmax_point.memoryBound);
    EXPECT_GT(qk_point.operationalIntensity,
              softmax_point.operationalIntensity * 5);
}

TEST(Roofline, TableRendersAllUniqueKernels)
{
    const Gpu gpu = runSampleSda();
    const std::string out = renderRoofline(gpu).render();
    EXPECT_NE(out.find("sda.softmax"), std::string::npos);
    EXPECT_NE(out.find("memory-bound"), std::string::npos);
    EXPECT_NE(out.find("ridge"), std::string::npos);
    // Unique kernels only: softmax appears once despite two rounds.
    EXPECT_EQ(out.find("sda.softmax"), out.rfind("sda.softmax"));
}

} // namespace
} // namespace softrec
