/**
 * @file
 * Async serve engine tests: TokenStream channel semantics, streaming
 * to completion through ServeSession, batch-composition bit-identity,
 * per-tenant budget enforcement end to end, abandoned-session
 * cancellation, structured rejections, and a multi-producer stress
 * test (every submitted request either streams to completion or gets
 * a reasoned rejection). Runs under tsan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/serve_engine.hpp"

namespace softrec {
namespace {

constexpr int64_t kDm = 32;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model = kDm)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

ServeRequest
makeRequest(Rng &rng, int64_t prompt_tokens, int64_t generate_tokens,
            int64_t tenant = 0)
{
    ServeRequest request;
    request.tenantId = tenant;
    request.prompt = randomPrompt(rng, prompt_tokens);
    request.generateTokens = generate_tokens;
    return request;
}

DecoderStack
testStack(uint64_t seed = 19)
{
    Rng rng(seed);
    return DecoderStack::random(kDm, /*num_heads=*/2, /*d_ff=*/48,
                                /*num_layers=*/2, rng);
}

/** Engine config sized so tests never block on stream capacity. */
ServeConfig
testConfig(int64_t batch_rows = 4)
{
    ServeConfig config;
    config.maxBatchRows = batch_rows;
    config.tokenBudget = 1024;
    config.queueCapacity = 64;
    config.kvBlockTokens = 4;
    config.streamCapacity = 64;
    // Honour SOFTREC_SERVE_KV_DTYPE so CI's int8 ctest run drives the
    // full engine (streaming, cancellation, tenancy) on the quantized
    // cache. Tests that assert exact budget thresholds pin F16.
    config.kvDtype = kvDtypeFromEnv();
    // Honour SOFTREC_SERVE_PREFILL_CHUNK the same way: CI replays
    // this suite with a small chunk so every engine behaviour runs
    // on the interleaved-prefill path too.
    config.prefillChunkTokens = prefillChunkTokensFromEnv();
    return config;
}

// --- TokenStream ------------------------------------------------------

TEST(TokenStream, DeliversTokensInOrderThenFinishes)
{
    TokenStream stream(/*capacity=*/4, /*row_width=*/kDm);
    std::vector<Half> row(static_cast<size_t>(kDm));
    for (int t = 0; t < 3; ++t) {
        for (int64_t j = 0; j < kDm; ++j)
            row[size_t(j)] = Half(float(t * 100 + j));
        ASSERT_TRUE(stream.push(row.data()));
    }
    stream.finish(1.5);

    Tensor<Half> out;
    for (int t = 0; t < 3; ++t) {
        ASSERT_TRUE(stream.next(out));
        ASSERT_EQ(out.shape(), Shape({1, kDm}));
        for (int64_t j = 0; j < kDm; ++j)
            EXPECT_EQ(out.at(0, j).bits(),
                      Half(float(t * 100 + j)).bits());
    }
    // Terminal and drained: next() reports end-of-stream.
    EXPECT_FALSE(stream.next(out));
    EXPECT_EQ(stream.status(), StreamStatus::Finished);
    EXPECT_EQ(stream.tokensDelivered(), 3);
    EXPECT_EQ(stream.finishSeconds(), 1.5);
}

TEST(TokenStream, TryNextDistinguishesPendingFromEnd)
{
    TokenStream stream(4, kDm);
    Tensor<Half> out;
    EXPECT_EQ(stream.tryNext(out), TokenStream::TryNext::Pending);
    std::vector<Half> row(static_cast<size_t>(kDm));
    ASSERT_TRUE(stream.push(row.data()));
    EXPECT_EQ(stream.tryNext(out), TokenStream::TryNext::Token);
    EXPECT_EQ(stream.tryNext(out), TokenStream::TryNext::Pending);
    stream.cancel("overload", 2.0);
    EXPECT_EQ(stream.tryNext(out), TokenStream::TryNext::End);
    EXPECT_EQ(stream.status(), StreamStatus::Cancelled);
    EXPECT_EQ(stream.cancelReason(), "overload");
}

TEST(TokenStream, BoundedRingBlocksProducerUntilConsumerPops)
{
    // Capacity-1 ring: the producer can only run ahead by one token,
    // so a slow consumer paces it (bounded-channel backpressure).
    TokenStream stream(1, kDm);
    std::atomic<int> pushed{0};
    std::thread producer([&stream, &pushed] {
        std::vector<Half> row(static_cast<size_t>(kDm));
        for (int t = 0; t < 16; ++t) {
            row[0] = Half(float(t));
            ASSERT_TRUE(stream.push(row.data()));
            pushed.fetch_add(1);
        }
        stream.finish(0.0);
    });
    Tensor<Half> out;
    for (int t = 0; t < 16; ++t) {
        ASSERT_TRUE(stream.next(out));
        EXPECT_EQ(out.at(0, 0).bits(), Half(float(t)).bits());
        EXPECT_LE(pushed.load(), t + 2); // never ran ahead of the ring
    }
    EXPECT_FALSE(stream.next(out));
    producer.join();
}

TEST(TokenStream, CloseMakesPushFailAndUnblocksTheProducer)
{
    TokenStream stream(1, kDm);
    std::vector<Half> row(static_cast<size_t>(kDm));
    ASSERT_TRUE(stream.push(row.data())); // ring now full
    std::thread producer([&stream, &row] {
        // Blocks on the full ring until close(), then fails.
        EXPECT_FALSE(stream.push(row.data()));
    });
    stream.close();
    producer.join();
    EXPECT_FALSE(stream.push(row.data())); // stays closed
}

TEST(TokenStream, AbortPushFailsOnlyWhenTheRingIsFull)
{
    TokenStream stream(1, kDm);
    std::vector<Half> row(static_cast<size_t>(kDm));
    stream.abortPush();
    // Space in the ring: pushes keep succeeding after an abort, so a
    // consumer that is draining still finishes during shutdown.
    ASSERT_TRUE(stream.push(row.data()));
    // Full ring after an abort: fail instead of blocking forever.
    EXPECT_FALSE(stream.push(row.data()));
    Tensor<Half> out;
    ASSERT_EQ(stream.tryNext(out), TokenStream::TryNext::Token);
    ASSERT_TRUE(stream.push(row.data()));
}

TEST(TokenStream, AbortPushWakesABlockedProducer)
{
    TokenStream stream(1, kDm);
    std::vector<Half> row(static_cast<size_t>(kDm));
    ASSERT_TRUE(stream.push(row.data())); // ring now full
    std::thread producer([&stream, &row] {
        // Blocks on the full ring until abortPush(), then fails.
        EXPECT_FALSE(stream.push(row.data()));
    });
    stream.abortPush();
    producer.join();
}

TEST(ServeSession, DroppingTheHandleClosesTheStream)
{
    auto stream = std::make_shared<TokenStream>(4, kDm);
    {
        ServeSession session(7, 3, stream);
        EXPECT_TRUE(session.valid());
        EXPECT_EQ(session.id(), 7);
        EXPECT_EQ(session.tenantId(), 3);
    }
    std::vector<Half> row(static_cast<size_t>(kDm));
    EXPECT_FALSE(stream->push(row.data()));
}

// --- ServeEngine ------------------------------------------------------

TEST(ServeEngine, StreamsEveryRequestToCompletion)
{
    const DecoderStack stack = testStack();
    ServeEngine engine(ExecContext(), stack, testConfig());
    engine.start();

    Rng rng(21);
    std::vector<ServeSession> sessions;
    std::vector<int64_t> want;
    for (int64_t i = 0; i < 5; ++i) {
        SubmitResult result =
            engine.submit(makeRequest(rng, 3 + i % 3, 2 + i % 2));
        ASSERT_TRUE(result.decision.accepted)
            << result.decision.reason;
        EXPECT_GT(result.session.id(), 0); // engine-assigned
        sessions.push_back(std::move(result.session));
        want.push_back(2 + i % 2);
    }

    Tensor<Half> row;
    for (size_t i = 0; i < sessions.size(); ++i) {
        int64_t tokens = 0;
        while (sessions[i].stream().next(row)) {
            EXPECT_EQ(row.shape(), Shape({1, kDm}));
            ++tokens;
        }
        EXPECT_EQ(tokens, want[i]);
        EXPECT_EQ(sessions[i].stream().status(),
                  StreamStatus::Finished);
        EXPECT_GT(sessions[i].stream().finishSeconds(), 0.0);
    }

    engine.waitIdle();
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requestsServed, 5);
    EXPECT_EQ(stats.requestsCancelled, 0);
    EXPECT_EQ(stats.tokensGenerated, 2 + 3 + 2 + 3 + 2);
    EXPECT_GT(stats.decodeSteps, 0);
    EXPECT_EQ(stats.activeRows, 0);
    EXPECT_EQ(stats.kvBlocksInUse, 0);
    EXPECT_EQ(stats.queueDepth, 0);
}

TEST(ServeEngine, BatchCompositionNeverChangesTheTokens)
{
    // The same requests served with batch width 1 and 4 must stream
    // bit-identical final rows: batching is a scheduling decision,
    // never a numerics decision — the engine inherits the decode
    // path's row-local math.
    const DecoderStack stack = testStack();
    auto serve = [&stack](int64_t batch_rows) {
        ServeEngine engine(ExecContext(), stack,
                           testConfig(batch_rows));
        engine.start();
        Rng rng(23);
        std::vector<ServeSession> sessions;
        for (int64_t i = 0; i < 5; ++i) {
            SubmitResult result =
                engine.submit(makeRequest(rng, 3 + i % 3, 2 + i % 2));
            EXPECT_TRUE(result.decision.accepted);
            sessions.push_back(std::move(result.session));
        }
        std::map<int64_t, std::vector<uint16_t>> final_rows;
        Tensor<Half> row;
        for (ServeSession &session : sessions) {
            while (session.stream().next(row)) {
            }
            std::vector<uint16_t> bits;
            for (int64_t j = 0; j < kDm; ++j)
                bits.push_back(row.at(0, j).bits());
            final_rows[session.id()] = bits;
        }
        return final_rows;
    };
    const auto serial = serve(1);
    const auto batched = serve(4);
    ASSERT_EQ(serial.size(), 5u);
    EXPECT_EQ(serial, batched);
}

TEST(ServeEngine, ChunkedPrefillNeverChangesTheTokens)
{
    // Interleaving prefill with decode is also only a scheduling
    // decision: the same requests served unchunked and with a chunk
    // smaller than every prompt must stream bit-identical final rows
    // and the same completion accounting. Prompts are long enough
    // that each one spans several chunks.
    const DecoderStack stack = testStack();
    auto serve = [&stack](int64_t chunk_tokens) {
        ServeConfig config = testConfig();
        config.prefillChunkTokens = chunk_tokens;
        ServeEngine engine(ExecContext(), stack, config);
        engine.start();
        Rng rng(47);
        std::vector<ServeSession> sessions;
        for (int64_t i = 0; i < 5; ++i) {
            SubmitResult result = engine.submit(
                makeRequest(rng, 9 + i % 5, 2 + i % 2));
            EXPECT_TRUE(result.decision.accepted)
                << result.decision.reason;
            sessions.push_back(std::move(result.session));
        }
        std::map<int64_t, std::vector<uint16_t>> final_rows;
        Tensor<Half> row;
        for (ServeSession &session : sessions) {
            while (session.stream().next(row)) {
            }
            EXPECT_EQ(session.stream().status(),
                      StreamStatus::Finished);
            std::vector<uint16_t> bits;
            for (int64_t j = 0; j < kDm; ++j)
                bits.push_back(row.at(0, j).bits());
            final_rows[session.id()] = bits;
        }
        engine.waitIdle();
        const ServeStats stats = engine.stats();
        EXPECT_EQ(stats.requestsServed, 5);
        EXPECT_EQ(stats.prefillingRows, 0); // all prefills retired
        EXPECT_EQ(stats.kvBlocksInUse, 0);
        return final_rows;
    };
    const auto unchunked = serve(0);
    const auto chunked = serve(3);
    ASSERT_EQ(unchunked.size(), 5u);
    EXPECT_EQ(unchunked, chunked);
}

TEST(Percentile, InterpolatesBetweenSortedSamples)
{
    const std::vector<double> samples{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentileSeconds(samples, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSeconds(samples, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentileSeconds(samples, 1.0), 4.0);
    // A single sample is every percentile of itself.
    EXPECT_DOUBLE_EQ(percentileSeconds({5.0}, 0.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSeconds({5.0}, 0.95), 5.0);
}

TEST(Percentile, EmptySamplesAndBadQuantilesAreHardErrors)
{
    // A percentile of nothing is meaningless; returning 0.0 here once
    // let empty benchmark arms report perfect latency.
    EXPECT_THROW(percentileSeconds({}, 0.5), std::logic_error);
    EXPECT_THROW(percentileSeconds({1.0}, -0.01), std::logic_error);
    EXPECT_THROW(percentileSeconds({1.0}, 1.01), std::logic_error);
}

TEST(ServeEngine, TenantBudgetIsEnforcedAcrossInFlightRequests)
{
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.admission.tenantTokenBudget = 24;
    ServeEngine engine(ExecContext(), stack, config);
    // Not started: the first request stays in flight while the second
    // is decided, making the outcome deterministic.

    Rng rng(29);
    SubmitResult first =
        engine.submit(makeRequest(rng, 8, 8, /*tenant=*/5));
    ASSERT_TRUE(first.decision.accepted) << first.decision.reason;

    SubmitResult second =
        engine.submit(makeRequest(rng, 8, 8, /*tenant=*/5));
    EXPECT_FALSE(second.decision.accepted);
    EXPECT_EQ(second.decision.metric, "tenant_inflight_tokens");
    EXPECT_EQ(second.decision.value, 32.0);
    EXPECT_EQ(second.decision.threshold, 24.0);

    // A different tenant is not collateral damage.
    SubmitResult other =
        engine.submit(makeRequest(rng, 8, 8, /*tenant=*/6));
    EXPECT_TRUE(other.decision.accepted) << other.decision.reason;

    // Once tenant 5's request finishes, its budget reopens.
    engine.start();
    Tensor<Half> row;
    while (first.session.stream().next(row)) {
    }
    while (other.session.stream().next(row)) {
    }
    engine.waitIdle();
    SubmitResult again =
        engine.submit(makeRequest(rng, 8, 8, /*tenant=*/5));
    EXPECT_TRUE(again.decision.accepted) << again.decision.reason;
    while (again.session.stream().next(row)) {
    }
    engine.waitIdle();
}

TEST(ServeEngine, AbandonedSessionIsCancelledAndReclaimed)
{
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.streamCapacity = 2; // engine outruns the consumer quickly
    ServeEngine engine(ExecContext(), stack, config);
    engine.start();

    Rng rng(31);
    {
        SubmitResult result = engine.submit(
            makeRequest(rng, 4, /*generate_tokens=*/200, /*tenant=*/9));
        ASSERT_TRUE(result.decision.accepted);
        // Read one token, then drop the session: the consumer went
        // away mid-generation.
        Tensor<Half> row;
        ASSERT_TRUE(result.session.stream().next(row));
    }
    engine.waitIdle();

    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requestsCancelled, 1);
    EXPECT_EQ(stats.requestsServed, 0);
    EXPECT_EQ(stats.activeRows, 0);
    EXPECT_EQ(stats.kvBlocksInUse, 0); // KV blocks reclaimed
    // The tenant's budget was released, so it can submit again.
    SubmitResult again =
        engine.submit(makeRequest(rng, 4, 2, /*tenant=*/9));
    EXPECT_TRUE(again.decision.accepted) << again.decision.reason;
    Tensor<Half> row;
    while (again.session.stream().next(row)) {
    }
    engine.waitIdle();
}

TEST(ServeEngine, ShutdownDoesNotHangOnAStalledConsumer)
{
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.streamCapacity = 2; // engine outruns the consumer quickly
    ServeEngine engine(ExecContext(), stack, config);
    engine.start();

    Rng rng(43);
    SubmitResult result = engine.submit(
        makeRequest(rng, 4, /*generate_tokens=*/200));
    ASSERT_TRUE(result.decision.accepted);
    // Read one token, then stop draining WITHOUT dropping the
    // session: the serving thread ends up blocked pushing into the
    // full ring, which shutdown() must interrupt rather than hang in
    // join().
    Tensor<Half> row;
    ASSERT_TRUE(result.session.stream().next(row));
    engine.shutdown();

    EXPECT_EQ(result.session.stream().status(),
              StreamStatus::Cancelled);
    EXPECT_NE(result.session.stream().cancelReason().find("shut down"),
              std::string::npos);
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requestsCancelled, 1);
    EXPECT_EQ(stats.requestsServed, 0);
    EXPECT_EQ(stats.kvBlocksInUse, 0);
}

TEST(ServeEngine, RejectsImpossibleAndMalformedRequestsWithReasons)
{
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.tokenBudget = 16;
    // Pinned: value/threshold below assert the f16-denominated budget
    // verbatim; int8 would rebase 16 tokens to ~31 and admit this.
    config.kvDtype = KvDtype::F16;
    ServeEngine engine(ExecContext(), stack, config);
    Rng rng(37);

    SubmitResult too_big = engine.submit(makeRequest(rng, 14, 4));
    EXPECT_FALSE(too_big.decision.accepted);
    EXPECT_EQ(too_big.decision.metric, "request_kv_tokens");
    EXPECT_EQ(too_big.decision.value, 18.0);
    EXPECT_EQ(too_big.decision.threshold, 16.0);
    EXPECT_FALSE(too_big.session.valid());

    ServeRequest wrong_width;
    wrong_width.prompt = randomPrompt(rng, 3, kDm * 2);
    wrong_width.generateTokens = 1;
    SubmitResult mismatched = engine.submit(std::move(wrong_width));
    EXPECT_FALSE(mismatched.decision.accepted);
    EXPECT_NE(mismatched.decision.reason.find("dModel"),
              std::string::npos);

    SubmitResult no_tokens = engine.submit(makeRequest(rng, 3, 1));
    ASSERT_TRUE(no_tokens.decision.accepted);
    (void)no_tokens; // dropped: cancelled at shutdown
}

TEST(ServeEngine, QueueOverflowIsAStructuredRejection)
{
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.queueCapacity = 2;
    // Never started: the queue cannot drain, so the third accept-able
    // submit must come back with the queue_depth metric.
    ServeEngine engine(ExecContext(), stack, config);
    Rng rng(41);
    SubmitResult a = engine.submit(makeRequest(rng, 3, 2));
    SubmitResult b = engine.submit(makeRequest(rng, 3, 2));
    ASSERT_TRUE(a.decision.accepted);
    ASSERT_TRUE(b.decision.accepted);
    SubmitResult c = engine.submit(makeRequest(rng, 3, 2));
    EXPECT_FALSE(c.decision.accepted);
    EXPECT_EQ(c.decision.metric, "queue_depth");
    EXPECT_EQ(c.decision.value, 2.0);
    EXPECT_EQ(c.decision.threshold, 2.0);
    // Shutdown without start cancels what was queued, with a reason.
    engine.shutdown();
    EXPECT_EQ(a.session.stream().status(), StreamStatus::Cancelled);
    EXPECT_NE(a.session.stream().cancelReason().find("shut down"),
              std::string::npos);
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requestsCancelled, 2);
}

TEST(ServeEngine, MultiProducerStressCompletesOrRejectsEverything)
{
    // 4 producers x 12 mixed-size requests against a small queue and
    // tight thresholds: every submit must return a decision, every
    // accepted request must stream to a terminal state, and the
    // accounting must balance. Run under tsan in CI.
    const DecoderStack stack = testStack();
    ServeConfig config = testConfig();
    config.queueCapacity = 8;
    config.tokenBudget = 256;
    config.admission.softEnterPct = 40;
    config.admission.hardEnterPct = 85;
    config.admission.hysteresisPct = 10;
    config.admission.tenantTokenBudget = 128;
    config.admission.softPromptCapTokens = 6;
    ServeEngine engine(ExecContext(), stack, config);
    engine.start();

    std::atomic<int64_t> streamed{0};
    std::atomic<int64_t> rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&engine, &streamed, &rejected, p] {
            Rng rng(100 + p);
            Tensor<Half> row;
            for (int i = 0; i < 12; ++i) {
                const int64_t prompt_tokens = 2 + (p + i) % 7;
                const int64_t generate = 1 + (p * 5 + i) % 9;
                ServeRequest request;
                request.tenantId = p % 2;
                request.prompt =
                    randomPrompt(rng, prompt_tokens);
                request.generateTokens = generate;
                SubmitResult result =
                    engine.submit(std::move(request));
                if (!result.decision.accepted) {
                    // Reasoned rejection: human text plus the
                    // machine-readable metric.
                    EXPECT_FALSE(result.decision.reason.empty());
                    EXPECT_FALSE(result.decision.metric.empty());
                    rejected.fetch_add(1);
                    continue;
                }
                int64_t tokens = 0;
                while (result.session.stream().next(row))
                    ++tokens;
                EXPECT_EQ(result.session.stream().status(),
                          StreamStatus::Finished);
                EXPECT_EQ(tokens, generate);
                streamed.fetch_add(1);
            }
        });
    }
    for (std::thread &producer : producers)
        producer.join();
    engine.waitIdle();

    const ServeStats stats = engine.stats();
    EXPECT_EQ(streamed.load() + rejected.load(), 48);
    EXPECT_EQ(stats.requestsServed, streamed.load());
    EXPECT_EQ(stats.requestsCancelled, 0);
    EXPECT_EQ(stats.activeRows, 0);
    EXPECT_EQ(stats.kvBlocksInUse, 0);
    EXPECT_EQ(stats.queueDepth, 0);
    // Every decode step took a pressure sample (idle boundary steps
    // sample too, so updates can exceed decode steps).
    const AdmissionController::Residency residency = stats.residency;
    EXPECT_GE(residency.updatesInMode[0] + residency.updatesInMode[1] +
                  residency.updatesInMode[2],
              stats.decodeSteps);
}

} // namespace
} // namespace softrec
