/**
 * @file
 * Cross-cutting property tests: monotonicity and consistency
 * invariants of the cost model, the GEMM profiles, and the planner,
 * fuzzed over randomized shapes.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/recomposition.hpp"
#include "kernels/gemm.hpp"
#include "sim/cost_model.hpp"
#include "sim/gpu.hpp"

namespace softrec {
namespace {

KernelProfile
randomStreamingProfile(Rng &rng)
{
    KernelProfile prof;
    prof.name = "fuzz";
    prof.geom.numBlocks = 1 + int64_t(rng.uniformInt(1 << 16));
    prof.geom.block.threads = 32 * (1 + int(rng.uniformInt(8)));
    prof.geom.block.smemBytes = rng.uniformInt(32 * 1024);
    prof.geom.block.regsPerThread = 16 + int(rng.uniformInt(64));
    prof.dramReadBytes = 1 + rng.uniformInt(1ull << 28);
    prof.dramWriteBytes = rng.uniformInt(1ull << 28);
    return prof;
}

TEST(CostModelProperties, TimePositiveAndAtLeastOverhead)
{
    Rng rng(1);
    const GpuSpec spec = GpuSpec::a100();
    for (int trial = 0; trial < 200; ++trial) {
        const KernelStats stats =
            evaluateKernel(spec, randomStreamingProfile(rng));
        EXPECT_GT(stats.seconds, 0.0);
        EXPECT_GE(stats.seconds, stats.overheadSeconds);
        EXPECT_GE(stats.dramSeconds, 0.0);
        EXPECT_LE(stats.bandwidthUtilization, 1.0);
    }
}

TEST(CostModelProperties, MoreBytesNeverFaster)
{
    Rng rng(2);
    const GpuSpec spec = GpuSpec::a100();
    for (int trial = 0; trial < 100; ++trial) {
        KernelProfile prof = randomStreamingProfile(rng);
        const double before = evaluateKernel(spec, prof).dramSeconds;
        prof.dramReadBytes *= 2;
        const double after = evaluateKernel(spec, prof).dramSeconds;
        EXPECT_GE(after, before);
    }
}

TEST(CostModelProperties, MoreBandwidthNeverSlower)
{
    Rng rng(3);
    GpuSpec fast = GpuSpec::a100();
    GpuSpec slow = fast;
    slow.dramBandwidth /= 2.0;
    for (int trial = 0; trial < 100; ++trial) {
        const KernelProfile prof = randomStreamingProfile(rng);
        EXPECT_LE(evaluateKernel(fast, prof).dramSeconds,
                  evaluateKernel(slow, prof).dramSeconds);
    }
}

TEST(CostModelProperties, DeratesOnlyEverSlowDown)
{
    Rng rng(4);
    const GpuSpec spec = GpuSpec::rtx3090();
    for (int trial = 0; trial < 100; ++trial) {
        KernelProfile clean = randomStreamingProfile(rng);
        KernelProfile derated = clean;
        derated.laneUtilization = 0.1 + 0.8 * rng.uniform();
        derated.serializationFactor = 0.2 + 0.7 * rng.uniform();
        derated.workImbalance = 1.0 + 7.0 * rng.uniform();
        EXPECT_GE(evaluateKernel(spec, derated).dramSeconds,
                  evaluateKernel(spec, clean).dramSeconds * 0.999);
    }
}

TEST(GemmProfileProperties, TrafficAndFlopsLowerBounds)
{
    Rng rng(5);
    const GpuSpec spec = GpuSpec::a100();
    for (int trial = 0; trial < 200; ++trial) {
        GemmDesc desc;
        desc.batch = 1 + int64_t(rng.uniformInt(8));
        desc.m = 16 * (1 + int64_t(rng.uniformInt(128)));
        desc.n = 16 * (1 + int64_t(rng.uniformInt(128)));
        desc.k = 16 * (1 + int64_t(rng.uniformInt(128)));
        const KernelProfile prof = gemmProfile(spec, desc);
        // Every operand crosses DRAM at least once; the output is
        // written exactly once.
        EXPECT_GE(prof.dramReadBytes,
                  uint64_t(desc.batch) *
                      uint64_t(desc.m * desc.k + desc.k * desc.n) * 2);
        EXPECT_EQ(prof.dramWriteBytes,
                  uint64_t(desc.batch * desc.m * desc.n) * 2);
        EXPECT_DOUBLE_EQ(prof.tensorFlops,
                         2.0 * double(desc.batch) * double(desc.m) *
                             double(desc.n) * double(desc.k));
        EXPECT_GT(prof.geom.numBlocks, 0);
    }
}

TEST(GemmProfileProperties, FusionNeverReducesWorkOrTraffic)
{
    Rng rng(6);
    const GpuSpec spec = GpuSpec::a100();
    for (int trial = 0; trial < 100; ++trial) {
        GemmDesc plain;
        plain.batch = 1 + int64_t(rng.uniformInt(4));
        plain.m = 64 * (1 + int64_t(rng.uniformInt(32)));
        plain.n = 64 * (1 + int64_t(rng.uniformInt(32)));
        plain.k = 64 * (1 + int64_t(rng.uniformInt(8)));
        plain.shapeClass = GemmShapeClass::Attention;
        GemmDesc fused = plain;
        fused.epilogue.localSoftmax = true;
        const KernelProfile p = gemmProfile(spec, plain);
        const KernelProfile f = gemmProfile(spec, fused);
        EXPECT_GE(f.dramWriteBytes, p.dramWriteBytes);
        EXPECT_GT(f.fusedPenalty, 1.0);
        EXPECT_GT(f.sfuOps, p.sfuOps);
    }
}

TEST(PlannerProperties, SdfAlwaysMovesFewerBytesThanBaselineAtScale)
{
    Rng rng(7);
    const GpuSpec spec = GpuSpec::a100();
    for (int trial = 0; trial < 50; ++trial) {
        SdaConfig config;
        config.heads = 1 + int64_t(rng.uniformInt(32));
        config.seqLen = 512 * (1 + int64_t(rng.uniformInt(16)));
        config.dHead = 64;
        config.causalMask = rng.uniform() < 0.5;
        auto bytes = [&](Strategy strategy) {
            uint64_t total = 0;
            for (const auto &prof :
                 buildSdaSchedule(spec, config, strategy).kernels)
                total += prof.dramBytes();
            return total;
        };
        const uint64_t base = bytes(Strategy::Baseline);
        EXPECT_LT(bytes(Strategy::Fused), base);
        EXPECT_GT(bytes(Strategy::Decomposed), base);
    }
}

TEST(PlannerProperties, SpeedupMonotoneInSequenceLengthForBert)
{
    // Coarse monotonicity over a fine L grid (every 512 tokens);
    // wave quantization of the thin attention GEMMs adds a few
    // percent of jitter at particular lengths, hence the tolerance.
    const GpuSpec spec = GpuSpec::a100();
    SdaConfig config;
    config.heads = 16;
    config.dHead = 64;
    double prev = 0.0;
    for (int64_t seq_len = 512; seq_len <= 8192; seq_len += 512) {
        config.seqLen = seq_len;
        auto seconds = [&](Strategy strategy) {
            Gpu gpu(spec);
            for (const auto &prof :
                 buildSdaSchedule(spec, config, strategy).kernels)
                gpu.launch(prof);
            return gpu.totalSeconds();
        };
        const double speedup =
            seconds(Strategy::Baseline) / seconds(Strategy::Fused);
        EXPECT_GT(speedup, prev * 0.92) << "L=" << seq_len;
        prev = std::max(prev, speedup);
    }
}

} // namespace
} // namespace softrec
