/**
 * @file
 * Tests of the attention sparsity pattern generators.
 */

#include <stdexcept>
#include <tuple>

#include <gtest/gtest.h>

#include "sparse/patterns.hpp"

namespace softrec {
namespace {

TEST(DensePattern, EveryBlockPresent)
{
    const auto layout = densePattern(256, 64);
    EXPECT_EQ(layout.blockRows(), 4);
    EXPECT_EQ(layout.nnzBlocks(), 16);
    EXPECT_DOUBLE_EQ(layout.density(), 1.0);
}

TEST(CausalPattern, LowerTriangular)
{
    const auto layout = causalPattern(256, 64);
    EXPECT_EQ(layout.nnzBlocks(), 10); // 4+3+2+1
    for (int64_t r = 0; r < 4; ++r)
        for (int64_t c = 0; c < 4; ++c)
            EXPECT_EQ(layout.hasBlock(r, c), c <= r);
}

TEST(SlidingWindowPattern, BandWidth)
{
    const auto layout = slidingWindowPattern(512, 64, 1);
    for (int64_t r = 0; r < 8; ++r) {
        for (int64_t c = 0; c < 8; ++c) {
            EXPECT_EQ(layout.hasBlock(r, c), std::abs(r - c) <= 1)
                << r << "," << c;
        }
    }
}

TEST(Patterns, RejectNonDivisibleSequenceLength)
{
    EXPECT_THROW(densePattern(100, 64), std::runtime_error);
    EXPECT_THROW(bigBirdPattern(100, BigBirdParams{}),
                 std::runtime_error);
}

TEST(BigBird, ContainsWindowGlobalAndRandom)
{
    BigBirdParams params;
    params.blockSize = 64;
    params.windowBlocks = 3;
    params.globalBlocks = 2;
    params.randomBlocks = 3;
    const int64_t L = 4096;
    const auto layout = bigBirdPattern(L, params);
    const int64_t n = L / 64;

    // Window: diagonal +/- 1 present everywhere.
    for (int64_t r = 0; r < n; ++r) {
        EXPECT_TRUE(layout.hasBlock(r, r));
        if (r > 0) {
            EXPECT_TRUE(layout.hasBlock(r, r - 1));
        }
        if (r < n - 1) {
            EXPECT_TRUE(layout.hasBlock(r, r + 1));
        }
    }
    // Global: first two block rows and columns fully dense.
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t g = 0; g < 2; ++g) {
            EXPECT_TRUE(layout.hasBlock(g, i));
            EXPECT_TRUE(layout.hasBlock(i, g));
        }
    }
    // Random: interior rows have window + global + random blocks.
    const auto stats = analyzeSparsity(layout);
    EXPECT_GE(stats.minRowBlocks, 3 + 2); // window(3) + global(2) overlap-free interior
    // Density stays low (sparse attention).
    EXPECT_LT(layout.density(), 0.20);
    EXPECT_GT(layout.density(), 0.05);
}

TEST(BigBird, DeterministicPerSeed)
{
    BigBirdParams a, b;
    a.seed = b.seed = 77;
    EXPECT_EQ(bigBirdPattern(1024, a).toMask(),
              bigBirdPattern(1024, b).toMask());
    b.seed = 78;
    EXPECT_NE(bigBirdPattern(1024, a).toMask(),
              bigBirdPattern(1024, b).toMask());
}

TEST(BigBird, RandomBlockCountPerInteriorRow)
{
    BigBirdParams params;
    params.windowBlocks = 1;
    params.globalBlocks = 1;
    params.randomBlocks = 2;
    const auto layout = bigBirdPattern(1024, params);
    const int64_t n = 16;
    // An interior row has: window(1) + global col(1) + random(2) = 4,
    // unless a random block landed adjacent (still >= 4 candidates
    // means exactly 4 here because random picks avoid existing).
    for (int64_t r = 2; r < n - 1; ++r)
        EXPECT_EQ(layout.rowNnzBlocks(r), 4) << "row " << r;
}

TEST(Longformer, WindowPlusGlobal)
{
    LongformerParams params;
    params.blockSize = 64;
    params.windowTokens = 512;
    params.globalBlocks = 1;
    const auto layout = longformerPattern(4096, params);
    const int64_t n = 64;
    const int64_t half = 4; // 256 tokens each side / 64

    for (int64_t r = 8; r < n - 8; ++r) {
        for (int64_t c = 0; c < n; ++c) {
            const bool in_window = std::abs(r - c) <= half;
            const bool global = c < 1 || r < 1;
            EXPECT_EQ(layout.hasBlock(r, c), in_window || global)
                << r << "," << c;
        }
    }
    EXPECT_LT(layout.density(), 0.2);
}

TEST(Longformer, ShortSequenceDegeneratesToDense)
{
    LongformerParams params;
    params.blockSize = 64;
    params.windowTokens = 1024;
    const auto layout = longformerPattern(512, params);
    EXPECT_DOUBLE_EQ(layout.density(), 1.0);
}

/** Structural invariants across lengths and block sizes. */
class PatternInvariants
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>>
{};

TEST_P(PatternInvariants, AllPatternsKeepDiagonalAndSymmetricGlobals)
{
    const auto [L, bs] = GetParam();
    BigBirdParams bb;
    bb.blockSize = bs;
    LongformerParams lf;
    lf.blockSize = bs;
    for (const BsrLayout &layout :
         {bigBirdPattern(L, bb), longformerPattern(L, lf)}) {
        const int64_t n = L / bs;
        for (int64_t r = 0; r < n; ++r) {
            // Every token attends to itself.
            EXPECT_TRUE(layout.hasBlock(r, r));
            // Every row non-empty.
            EXPECT_GE(layout.rowNnzBlocks(r), 1);
        }
        // Global attention is symmetric: block (0, i) iff (i, 0).
        for (int64_t i = 0; i < n; ++i)
            EXPECT_EQ(layout.hasBlock(0, i), layout.hasBlock(i, 0));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PatternInvariants,
    ::testing::Combine(::testing::Values(512, 1024, 2048, 4096),
                       ::testing::Values(32, 64, 128)));

TEST(Patterns, DensityScalesInverselyWithLength)
{
    BigBirdParams params;
    const double d1 = bigBirdPattern(1024, params).density();
    const double d2 = bigBirdPattern(4096, params).density();
    EXPECT_GT(d1, d2 * 2.0); // nnz per row ~constant, so density ~1/L
}

} // namespace
} // namespace softrec
