/**
 * @file
 * Tests of the element-wise / normalization kernels.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

TEST(LayerNorm, NormalizesRowsToAffineTarget)
{
    const int64_t rows = 8, width = 64;
    Rng rng(1);
    Tensor<Half> in(Shape({rows, width}));
    fillNormal(in, rng, 3.0, 2.0);
    Tensor<float> gamma(Shape({width}), 2.0f);
    Tensor<float> beta(Shape({width}), 0.5f);
    Tensor<Half> out(in.shape());
    layerNormRun(execCtx(), in, gamma, beta, out);

    for (int64_t i = 0; i < rows; ++i) {
        double mean = 0.0, var = 0.0;
        for (int64_t j = 0; j < width; ++j)
            mean += float(out.at(i, j));
        mean /= width;
        for (int64_t j = 0; j < width; ++j) {
            const double d = float(out.at(i, j)) - mean;
            var += d * d;
        }
        var /= width;
        // gamma 2, beta 0.5: mean 0.5, stddev 2.
        EXPECT_NEAR(mean, 0.5, 0.02);
        EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
    }
}

TEST(LayerNorm, PerColumnAffineApplied)
{
    Tensor<Half> in(Shape({1, 4}));
    in.at(0, 0) = Half(1.0f);
    in.at(0, 1) = Half(2.0f);
    in.at(0, 2) = Half(3.0f);
    in.at(0, 3) = Half(4.0f);
    Tensor<float> gamma(Shape({4}));
    Tensor<float> beta(Shape({4}));
    for (int64_t j = 0; j < 4; ++j) {
        gamma.at(j) = float(j + 1);
        beta.at(j) = float(10 * j);
    }
    Tensor<Half> out(in.shape());
    layerNormRun(execCtx(), in, gamma, beta, out);
    // x normalized = {-1.3416, -0.4472, 0.4472, 1.3416}.
    EXPECT_NEAR(float(out.at(0, 0)), -1.3416f * 1 + 0, 0.01);
    EXPECT_NEAR(float(out.at(0, 3)), 1.3416f * 4 + 30, 0.05);
}

TEST(LayerNorm, ShapeMismatchPanics)
{
    Tensor<Half> in(Shape({2, 4})), out(Shape({2, 4}));
    Tensor<float> gamma(Shape({3})), beta(Shape({4}));
    EXPECT_THROW(layerNormRun(execCtx(), in, gamma, beta, out), std::logic_error);
}

TEST(ResidualAdd, ElementwiseSum)
{
    Tensor<Half> a(Shape({6}), Half(1.5f));
    Tensor<Half> b(Shape({6}), Half(2.0f));
    Tensor<Half> out(Shape({6}));
    residualAddRun(execCtx(), a, b, out);
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_EQ(float(out.at(i)), 3.5f);
}

TEST(BiasAct, BiasOnly)
{
    Tensor<Half> in(Shape({2, 3}), Half(1.0f));
    Tensor<float> bias(Shape({3}));
    bias.at(0) = 0.0f;
    bias.at(1) = 1.0f;
    bias.at(2) = -2.0f;
    Tensor<Half> out(in.shape());
    biasActRun(execCtx(), in, bias, false, out);
    EXPECT_EQ(float(out.at(0, 0)), 1.0f);
    EXPECT_EQ(float(out.at(0, 1)), 2.0f);
    EXPECT_EQ(float(out.at(1, 2)), -1.0f);
}

TEST(BiasAct, BiasPlusGelu)
{
    Tensor<Half> in(Shape({1, 2}), Half(0.0f));
    Tensor<float> bias(Shape({2}));
    bias.at(0) = 1.0f;
    bias.at(1) = -1.0f;
    Tensor<Half> out(in.shape());
    biasActRun(execCtx(), in, bias, true, out);
    EXPECT_NEAR(float(out.at(0, 0)), geluApprox(1.0f), 1e-3);
    EXPECT_NEAR(float(out.at(0, 1)), geluApprox(-1.0f), 1e-3);
}

// ---------- profiles ----------

TEST(ElementwiseProfiles, TrafficAccounting)
{
    const GpuSpec spec = GpuSpec::a100();

    const auto ln = layerNormProfile(spec, "ln", 1024, 1024);
    EXPECT_EQ(ln.dramWriteBytes, uint64_t(1024 * 1024 * 2));
    EXPECT_EQ(ln.dramReadBytes,
              uint64_t(1024 * 1024 * 2 + 2 * 1024 * 4));
    EXPECT_LT(ln.serializationFactor, 1.0); // two dependent passes

    const auto res = residualAddProfile(spec, "res", 1000);
    EXPECT_EQ(res.dramReadBytes, uint64_t(2 * 1000 * 2));
    EXPECT_EQ(res.dramWriteBytes, uint64_t(1000 * 2));

    const auto bias = biasActProfile(spec, "bias", 128, 256, true);
    EXPECT_EQ(bias.dramWriteBytes, uint64_t(128 * 256 * 2));
    EXPECT_GT(bias.sfuOps, 0.0);
    const auto bias_plain = biasActProfile(spec, "b", 128, 256, false);
    EXPECT_EQ(bias_plain.sfuOps, 0.0);

    const auto mask = scaleMaskProfile(spec, "mask", 16, 512, 512);
    EXPECT_EQ(mask.dramReadBytes, uint64_t(16) * 512 * 512 * 2);
    EXPECT_EQ(mask.dramReadBytes, mask.dramWriteBytes);

    const auto reshape = reshapeProfile(spec, "rs", 4096);
    EXPECT_EQ(reshape.dramBytes(), uint64_t(2 * 4096 * 2));

    const auto embed = embeddingProfile(spec, "emb", 4096, 1024);
    EXPECT_EQ(embed.dramWriteBytes, uint64_t(4096 * 1024 * 2));
    EXPECT_GT(embed.dramReadBytes, embed.dramWriteBytes); // + token ids
}

TEST(ElementwiseProfiles, AllCategorizedAsOther)
{
    const GpuSpec spec = GpuSpec::a100();
    EXPECT_EQ(layerNormProfile(spec, "x", 8, 8).category,
              KernelCategory::Other);
    EXPECT_EQ(residualAddProfile(spec, "x", 8).category,
              KernelCategory::Other);
    EXPECT_EQ(biasActProfile(spec, "x", 8, 8, false).category,
              KernelCategory::Other);
    EXPECT_EQ(scaleMaskProfile(spec, "x", 1, 8, 8).category,
              KernelCategory::Other);
    EXPECT_EQ(reshapeProfile(spec, "x", 8).category,
              KernelCategory::Other);
    EXPECT_EQ(embeddingProfile(spec, "x", 8, 8).category,
              KernelCategory::Other);
}

TEST(ElementwiseProfiles, EmptyProblemsPanic)
{
    const GpuSpec spec = GpuSpec::a100();
    EXPECT_THROW(layerNormProfile(spec, "x", 0, 8), std::logic_error);
    EXPECT_THROW(residualAddProfile(spec, "x", 0), std::logic_error);
    EXPECT_THROW(scaleMaskProfile(spec, "x", 1, 0, 8),
                 std::logic_error);
}

} // namespace
} // namespace softrec
