/**
 * @file
 * Dedicated KvSlab/KvCache suite: freelist recycling and chunk
 * growth, per-layer append invariants, block-boundary addressing in
 * both storage formats, the per-block int8 quantization contract
 * (round-trip error <= scale / 2, rescale-on-append never compounds),
 * checked-build poison-on-release, and the end-to-end quantized
 * decode error bound (<= 5e-2 vs the fp16 reference) for both decode
 * kernels. Before this file the cache was only covered indirectly
 * through the serve tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "kernels/decode_attention.hpp"
#include "kernels/streaming_attention.hpp"
#include "serve/kv_cache.hpp"

namespace softrec {
namespace {

constexpr int64_t kDm = 32;

std::vector<Half>
randomRow(Rng &rng, int64_t width, double sigma = 0.5)
{
    std::vector<Half> row(static_cast<size_t>(width));
    for (int64_t j = 0; j < width; ++j)
        row[size_t(j)] = Half(float(rng.normal(0.0, sigma)));
    return row;
}

// --- slab bookkeeping -------------------------------------------------

TEST(KvSlab, RecyclesBlocksAcrossCaches)
{
    KvSlab slab(/*block_tokens=*/2, kDm, /*blocks_per_chunk=*/4);
    std::vector<Half> row(static_cast<size_t>(kDm));

    {
        KvCache cache(slab, /*num_layers=*/2);
        for (int t = 0; t < 3; ++t)
            for (int64_t layer = 0; layer < 2; ++layer)
                cache.appendRow(layer, row.data(), row.data());
        // 3 tokens / 2 per block = 2 blocks, x 2 layers x K and V.
        EXPECT_EQ(slab.blocksInUse(), 8);
        EXPECT_EQ(cache.context(), 3);
    }
    // Cache destruction returns every block without shrinking the
    // reservation — steady-state serving never re-mallocs.
    EXPECT_EQ(slab.blocksInUse(), 0);
    const int64_t reserved = slab.blocksReserved();
    EXPECT_GE(reserved, 8);

    KvCache reuse(slab, /*num_layers=*/2);
    for (int t = 0; t < 3; ++t)
        for (int64_t layer = 0; layer < 2; ++layer)
            reuse.appendRow(layer, row.data(), row.data());
    EXPECT_EQ(slab.blocksReserved(), reserved);
    EXPECT_GT(slab.bytesReserved(), 0);
}

TEST(KvSlab, GrowsByWholeChunksAndNeverShrinks)
{
    KvSlab slab(/*block_tokens=*/2, /*row_width=*/4,
                /*blocks_per_chunk=*/2);
    EXPECT_EQ(slab.blocksReserved(), 0);
    std::vector<std::byte *> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(slab.acquire());
    // Five acquires at two blocks per chunk = three chunks.
    EXPECT_EQ(slab.blocksReserved(), 6);
    EXPECT_EQ(slab.blocksInUse(), 5);
    EXPECT_EQ(slab.bytesReserved(), 6 * slab.blockBytes());
    for (std::byte *block : held)
        slab.release(block);
    EXPECT_EQ(slab.blocksInUse(), 0);
    // Re-acquiring the same working set touches only the freelist.
    for (int i = 0; i < 5; ++i)
        held[size_t(i)] = slab.acquire();
    EXPECT_EQ(slab.blocksReserved(), 6);
    for (std::byte *block : held)
        slab.release(block);
}

TEST(KvSlab, BlockBytesReflectStorageFormat)
{
    // The serve-bench capacity claim in one number: at the default
    // serving shape an int8 block is less than 1/1.8 the bytes of an
    // f16 block, so a fixed slab byte budget admits >= 1.8x tokens.
    const int64_t f16 = kvBlockBytes(KvDtype::F16, 64, 64);
    const int64_t i8 = kvBlockBytes(KvDtype::I8, 64, 64);
    EXPECT_EQ(f16, 64 * 64 * 2);
    EXPECT_EQ(i8, kKvBlockQuantBytes + 64 * 64);
    EXPECT_GE(double(f16) / double(i8), 1.8);

    // Odd shapes stay 16-aligned so every block's fp32 header is
    // addressable at its natural alignment.
    EXPECT_EQ(kvBlockBytes(KvDtype::I8, 3, 5) % 16, 0);
    EXPECT_EQ(kvBlockBytes(KvDtype::F16, 3, 5) % 16, 0);

    KvSlab f16_slab(64, 64, 4, KvDtype::F16);
    KvSlab i8_slab(64, 64, 4, KvDtype::I8);
    EXPECT_EQ(f16_slab.blockBytes(), f16);
    EXPECT_EQ(i8_slab.blockBytes(), i8);
    EXPECT_EQ(std::string(kvDtypeName(f16_slab.dtype())), "f16");
    EXPECT_EQ(std::string(kvDtypeName(i8_slab.dtype())), "int8");
}

// --- append invariants ------------------------------------------------

TEST(KvCache, ViewsAddressRowsAcrossBlockBoundaries)
{
    KvSlab slab(/*block_tokens=*/2, kDm);
    KvCache cache(slab, /*num_layers=*/1);
    std::vector<Half> k_row(static_cast<size_t>(kDm));
    std::vector<Half> v_row(static_cast<size_t>(kDm));
    for (int t = 0; t < 5; ++t) {
        for (int64_t j = 0; j < kDm; ++j) {
            k_row[size_t(j)] = Half(float(t * 100 + j));
            v_row[size_t(j)] = Half(float(-(t * 100 + j)));
        }
        cache.appendRow(0, k_row.data(), v_row.data());
    }
    const KvRowsView k = cache.kView(0);
    const KvRowsView v = cache.vView(0);
    ASSERT_EQ(k.rows, 5);
    EXPECT_EQ(k.dtype, KvDtype::F16);
    for (int t = 0; t < 5; ++t)
        for (int64_t j = 0; j < kDm; ++j) {
            EXPECT_EQ(k.row(t)[j].bits(),
                      Half(float(t * 100 + j)).bits());
            EXPECT_EQ(v.row(t)[j].bits(),
                      Half(float(-(t * 100 + j))).bits());
        }
}

TEST(KvCache, UnevenLayerAppendsAreCaught)
{
    KvSlab slab(/*block_tokens=*/2, kDm);
    KvCache cache(slab, /*num_layers=*/2);
    std::vector<Half> row(static_cast<size_t>(kDm));
    cache.appendRow(0, row.data(), row.data());
    cache.appendRow(1, row.data(), row.data());
    cache.appendRow(0, row.data(), row.data());
    // Layer 0 has 2 rows, layer 1 has 1: the context is ill-defined.
    EXPECT_THROW(cache.context(), std::logic_error);
    EXPECT_THROW(cache.appendRow(2, row.data(), row.data()),
                 std::logic_error);
    cache.appendRow(1, row.data(), row.data()); // repair for dtor
    EXPECT_EQ(cache.context(), 2);
}

// --- int8 quantization contract ---------------------------------------

/** Max-abs per-block value of rows [first, last] of `rows`. */
float
blockAmax(const std::vector<std::vector<Half>> &rows, size_t first,
          size_t last)
{
    float amax = 0.0f;
    for (size_t r = first; r <= last && r < rows.size(); ++r)
        for (const Half &h : rows[r])
            amax = std::max(amax, std::fabs(float(h)));
    return amax;
}

TEST(KvCacheI8, RoundTripErrorIsBoundedPerBlock)
{
    constexpr int64_t kBlockTokens = 4;
    KvSlab slab(kBlockTokens, kDm, /*blocks_per_chunk=*/4,
                KvDtype::I8);
    KvCache cache(slab, /*num_layers=*/1);

    Rng rng(101);
    std::vector<std::vector<Half>> appended;
    for (int t = 0; t < 11; ++t) { // spans two full + one open block
        appended.push_back(randomRow(rng, kDm));
        cache.appendRow(0, appended.back().data(),
                        appended.back().data());
    }

    const KvRowsView k = cache.kView(0);
    ASSERT_EQ(k.rows, 11);
    ASSERT_EQ(k.dtype, KvDtype::I8);
    std::vector<float> got(static_cast<size_t>(kDm));
    for (int64_t t = 0; t < 11; ++t) {
        const size_t b0 = size_t(t / kBlockTokens) *
                          size_t(kBlockTokens);
        const float amax =
            blockAmax(appended, b0, b0 + size_t(kBlockTokens) - 1);
        const float scale = amax / 127.0f;
        EXPECT_FLOAT_EQ(k.blockQuant(t).scale, scale);
        EXPECT_EQ(k.blockQuant(t).zero, 0.0f);
        // Round-to-nearest on the scale grid: every element within
        // half a quantization step of its fp16 source (small fp slack
        // for the scale division itself).
        const float bound = scale * 0.5f * 1.001f;
        k.loadRow(t, 0, kDm, got.data());
        for (int64_t j = 0; j < kDm; ++j) {
            const float want =
                float(appended[size_t(t)][size_t(j)]);
            EXPECT_LE(std::fabs(got[size_t(j)] - want), bound)
                << "row " << t << " col " << j;
        }
    }
}

TEST(KvCacheI8, RescaleOnAppendNeverCompoundsError)
{
    // Fill most of a block with tiny values, then append one huge row
    // into the same block. The block's scale must widen to the new
    // amax AND the earlier rows must still satisfy the *final* scale
    // bound — i.e. they were requantized from their exact fp16
    // staging copies, not from their previously quantized (and now
    // far-too-coarse-to-matter) int8 values.
    constexpr int64_t kBlockTokens = 4;
    KvSlab slab(kBlockTokens, kDm, /*blocks_per_chunk=*/4,
                KvDtype::I8);
    KvCache cache(slab, /*num_layers=*/1);

    Rng rng(103);
    std::vector<std::vector<Half>> appended;
    for (int t = 0; t < 3; ++t) {
        appended.push_back(randomRow(rng, kDm, /*sigma=*/0.01));
        cache.appendRow(0, appended.back().data(),
                        appended.back().data());
    }
    std::vector<Half> huge(static_cast<size_t>(kDm));
    for (int64_t j = 0; j < kDm; ++j)
        huge[size_t(j)] = Half(j % 2 == 0 ? 50.0f : -50.0f);
    appended.push_back(huge);
    cache.appendRow(0, huge.data(), huge.data());

    const KvRowsView k = cache.kView(0);
    const float scale = k.blockQuant(0).scale;
    EXPECT_FLOAT_EQ(scale, 50.0f / 127.0f);
    std::vector<float> got(static_cast<size_t>(kDm));
    for (int64_t t = 0; t < 4; ++t) {
        k.loadRow(t, 0, kDm, got.data());
        for (int64_t j = 0; j < kDm; ++j) {
            const float want =
                float(appended[size_t(t)][size_t(j)]);
            EXPECT_LE(std::fabs(got[size_t(j)] - want),
                      scale * 0.5f * 1.001f)
                << "row " << t << " col " << j;
        }
    }
}

TEST(KvCacheI8, BlocksQuantizeIndependently)
{
    // A huge value in block 1 must not coarsen block 0: per-block
    // scaling is the whole point vs per-tensor.
    constexpr int64_t kBlockTokens = 2;
    KvSlab slab(kBlockTokens, kDm, /*blocks_per_chunk=*/4,
                KvDtype::I8);
    KvCache cache(slab, /*num_layers=*/1);

    Rng rng(107);
    std::vector<std::vector<Half>> appended;
    for (int t = 0; t < 2; ++t) { // block 0: small values
        appended.push_back(randomRow(rng, kDm, /*sigma=*/0.05));
        cache.appendRow(0, appended.back().data(),
                        appended.back().data());
    }
    std::vector<Half> huge(size_t(kDm), Half(60.0f));
    cache.appendRow(0, huge.data(), huge.data()); // opens block 1

    const KvRowsView k = cache.kView(0);
    EXPECT_LT(k.blockQuant(0).scale, 1.0f);
    EXPECT_FLOAT_EQ(k.blockQuant(2).scale, 60.0f / 127.0f);
    // Block 0 rows keep their fine-grained bound.
    const float amax0 = blockAmax(appended, 0, 1);
    std::vector<float> got(static_cast<size_t>(kDm));
    for (int64_t t = 0; t < 2; ++t) {
        k.loadRow(t, 0, kDm, got.data());
        for (int64_t j = 0; j < kDm; ++j) {
            const float want =
                float(appended[size_t(t)][size_t(j)]);
            EXPECT_LE(std::fabs(got[size_t(j)] - want),
                      amax0 / 127.0f * 0.5f * 1.001f);
        }
    }
}

// --- poison-on-release (checked builds) -------------------------------

TEST(KvSlab, ReleasePoisonsF16BlocksInCheckedBuilds)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "poison-on-release is compiled out";
    KvSlab slab(/*block_tokens=*/2, /*row_width=*/4,
                /*blocks_per_chunk=*/2, KvDtype::F16);
    std::byte *block = slab.acquire();
    std::memset(block, 0, size_t(slab.blockBytes()));
    slab.release(block);
    // The slab still owns the memory (freelist); a stale view reading
    // it must see fp16 NaNs, not another request's zeros.
    const Half *rows = reinterpret_cast<const Half *>(block);
    for (int64_t i = 0; i < 2 * 4; ++i) {
        EXPECT_EQ(rows[i].bits(), 0x7e7e);
        EXPECT_TRUE(std::isnan(float(rows[i])));
    }
}

TEST(KvSlab, ReleasePoisonsI8HeadersInCheckedBuilds)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "poison-on-release is compiled out";
    KvSlab slab(/*block_tokens=*/2, /*row_width=*/4,
                /*blocks_per_chunk=*/2, KvDtype::I8);
    std::byte *block = slab.acquire();
    std::memset(block, 0, size_t(slab.blockBytes()));
    slab.release(block);
    KvBlockQuant header;
    std::memcpy(&header, block, sizeof(header));
    // NaN scale: any dequantized element of a stale block is NaN.
    EXPECT_TRUE(std::isnan(header.scale));
    const int8_t *payload =
        reinterpret_cast<const int8_t *>(block + kKvBlockQuantBytes);
    for (int64_t i = 0; i < 2 * 4; ++i)
        EXPECT_EQ(payload[i], int8_t(-128));
}

// --- quantized decode vs the fp16 reference ---------------------------

/**
 * Append the same random rows into an F16 and an I8 cache, run one
 * decode kernel against both, and bound the divergence. Exercises a
 * nonzero headOffset so the dequantized head *slice* path is covered.
 */
void
checkQuantizedDecodeError(bool streaming)
{
    constexpr int64_t kWidth = 16; // two heads of 8
    constexpr int64_t kHead = 8;
    constexpr int64_t kContext = 21; // partial final slab block
    KvSlab f16_slab(/*block_tokens=*/4, kWidth, 8, KvDtype::F16);
    KvSlab i8_slab(/*block_tokens=*/4, kWidth, 8, KvDtype::I8);
    KvCache f16_cache(f16_slab, /*num_layers=*/1);
    KvCache i8_cache(i8_slab, /*num_layers=*/1);

    Rng rng(211);
    for (int t = 0; t < kContext; ++t) {
        const std::vector<Half> k_row = randomRow(rng, kWidth);
        const std::vector<Half> v_row = randomRow(rng, kWidth);
        f16_cache.appendRow(0, k_row.data(), v_row.data());
        i8_cache.appendRow(0, k_row.data(), v_row.data());
    }

    const ExecContext ctx;
    const std::vector<Half> q = randomRow(rng, kHead);
    for (int64_t head = 0; head < 2; ++head) {
        DecodeAttendDesc desc;
        desc.dHead = kHead;
        desc.headOffset = head * kHead;
        desc.scale = 1.0 / std::sqrt(double(kHead));
        std::vector<Half> ref(static_cast<size_t>(kHead));
        std::vector<Half> quant(static_cast<size_t>(kHead));
        if (streaming) {
            decodeAttendStreamRun(ctx, desc, q.data(),
                                  f16_cache.kView(0),
                                  f16_cache.vView(0), ref.data());
            decodeAttendStreamRun(ctx, desc, q.data(),
                                  i8_cache.kView(0),
                                  i8_cache.vView(0), quant.data());
        } else {
            decodeAttendRun(ctx, desc, q.data(), f16_cache.kView(0),
                            f16_cache.vView(0), ref.data());
            decodeAttendRun(ctx, desc, q.data(), i8_cache.kView(0),
                            i8_cache.vView(0), quant.data());
        }
        float max_err = 0.0f;
        for (int64_t j = 0; j < kHead; ++j)
            max_err = std::max(
                max_err,
                std::fabs(float(ref[size_t(j)]) -
                          float(quant[size_t(j)])));
        // The acceptance contract: int8 KV decode stays within 5e-2
        // of the bit-exact fp16 reference for unit-scale activations.
        EXPECT_LE(max_err, 5e-2f) << "head " << head;
        EXPECT_GT(max_err, 0.0f); // the formats genuinely differ
    }
}

TEST(QuantizedDecode, ThreePassKernelStaysWithinContract)
{
    checkQuantizedDecodeError(/*streaming=*/false);
}

TEST(QuantizedDecode, StreamingKernelStaysWithinContract)
{
    checkQuantizedDecodeError(/*streaming=*/true);
}

} // namespace
} // namespace softrec
