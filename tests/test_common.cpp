/**
 * @file
 * Tests of the common infrastructure: logging, units, stats, tables.
 */

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace softrec {
namespace {

std::vector<std::pair<log::Level, std::string>> captured;

void
captureSink(log::Level level, const std::string &msg)
{
    captured.emplace_back(level, msg);
}

class LoggingCapture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        captured.clear();
        previous_ = log::setSink(captureSink);
    }
    void TearDown() override { log::setSink(previous_); }

  private:
    log::Sink previous_ = nullptr;
};

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s", "plain"), "plain");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, HandlesLongStrings)
{
    const std::string big(5000, 'x');
    EXPECT_EQ(strprintf("%s!", big.c_str()).size(), big.size() + 1);
}

TEST_F(LoggingCapture, InformAndWarnRouteThroughSink)
{
    inform("hello %d", 7);
    warn("careful %s", "there");
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, log::Level::Info);
    EXPECT_EQ(captured[0].second, "hello 7");
    EXPECT_EQ(captured[1].first, log::Level::Warn);
    EXPECT_EQ(captured[1].second, "careful there");
}

TEST_F(LoggingCapture, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config %d", 3), std::runtime_error);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, log::Level::Fatal);
}

TEST_F(LoggingCapture, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("internal bug"), std::logic_error);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, log::Level::Panic);
}

TEST_F(LoggingCapture, AssertMacroFiresOnlyWhenFalse)
{
    SOFTREC_ASSERT(1 + 1 == 2, "never printed");
    EXPECT_TRUE(captured.empty());
    EXPECT_THROW(SOFTREC_ASSERT(false, "value was %d", 9),
                 std::logic_error);
}

TEST(Units, FormatBytesPicksBinaryPrefixes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(512 * MiB), "512.00 MiB");
    EXPECT_EQ(formatBytes(3 * GiB), "3.00 GiB");
}

TEST(Units, FormatSecondsPicksScale)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(1.25e-3), "1.250 ms");
    EXPECT_EQ(formatSeconds(4e-6), "4.000 us");
    EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

TEST(Units, FormatRates)
{
    EXPECT_EQ(formatFlops(169e12), "169.0 TFLOPS");
    EXPECT_EQ(formatFlops(5e9), "5.0 GFLOPS");
    EXPECT_EQ(formatBandwidth(1555e9), "1555.0 GB/s");
}

TEST(StatGroup, AccumulatesAndPreservesInsertionOrder)
{
    StatGroup group("gpu");
    group.add("b", 1.0);
    group.add("a", 2.0);
    group.add("b", 3.0);
    EXPECT_EQ(group.get("b"), 4.0);
    EXPECT_EQ(group.get("a"), 2.0);
    EXPECT_EQ(group.get("missing"), 0.0);
    EXPECT_TRUE(group.has("a"));
    EXPECT_FALSE(group.has("missing"));
    const auto entries = group.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, "b");
    EXPECT_EQ(entries[1].first, "a");
}

TEST(StatGroup, SetOverwritesAndResetClears)
{
    StatGroup group("x");
    group.add("v", 5.0);
    group.set("v", 1.0);
    EXPECT_EQ(group.get("v"), 1.0);
    group.reset();
    EXPECT_FALSE(group.has("v"));
    EXPECT_TRUE(group.entries().empty());
}

TEST(RunningStat, SummaryStatistics)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.sample(v);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table("Title");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addSeparator();
    table.addRow({"b", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
    // Header, separator row, and frame rules all present.
    EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable table("t");
    table.setHeader({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::logic_error);
}

TEST(TextTable, RowBeforeHeaderPanics)
{
    TextTable table("t");
    EXPECT_THROW(table.addRow({"x"}), std::logic_error);
}

TEST(CsvWriter, RendersHeaderAndRows)
{
    CsvWriter csv;
    csv.setHeader({"model", "speedup"});
    csv.addRow({"BERT-large", "1.25"});
    csv.addRow({"GPT-Neo-1.3B", "1.12"});
    EXPECT_EQ(csv.render(),
              "model,speedup\nBERT-large,1.25\nGPT-Neo-1.3B,1.12\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(CsvWriter, QuotesSpecialCharacters)
{
    CsvWriter csv;
    csv.setHeader({"a", "b"});
    csv.addRow({"x,y", "he said \"hi\""});
    EXPECT_EQ(csv.render(),
              "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(CsvWriter, RowWidthMismatchPanics)
{
    CsvWriter csv;
    csv.setHeader({"a", "b"});
    EXPECT_THROW(csv.addRow({"only"}), std::logic_error);
    CsvWriter empty;
    EXPECT_THROW(empty.addRow({"x"}), std::logic_error);
}

TEST(CsvWriter, WritesAndReportsIoFailure)
{
    CsvWriter csv;
    csv.setHeader({"k", "v"});
    csv.addRow({"x", "1"});
    const std::string path = "/tmp/softrec_csv_test.csv";
    EXPECT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    // Unwritable path warns and returns false instead of throwing.
    log::Sink prev = log::setSink([](log::Level, const std::string &) {});
    EXPECT_FALSE(csv.writeFile("/nonexistent/dir/file.csv"));
    log::setSink(prev);
}

class FlagsQuiet : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        previous_ =
            log::setSink([](log::Level, const std::string &) {});
    }
    void TearDown() override { log::setSink(previous_); }

  private:
    log::Sink previous_ = nullptr;
};

TEST_F(FlagsQuiet, ParsesAllForms)
{
    FlagParser flags;
    flags.addString("model", "bert", "model name");
    flags.addInt("seq-len", 4096, "length");
    flags.addBool("timeline", "print timeline");
    EXPECT_TRUE(flags.parse(
        {"--model=bigbird", "--seq-len", "2048", "--timeline", "pos"}));
    EXPECT_EQ(flags.getString("model"), "bigbird");
    EXPECT_EQ(flags.getInt("seq-len"), 2048);
    EXPECT_TRUE(flags.getBool("timeline"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "pos");
}

TEST_F(FlagsQuiet, DefaultsWhenUnset)
{
    FlagParser flags;
    flags.addString("gpu", "a100", "gpu");
    flags.addInt("batch", 1, "batch");
    flags.addBool("verbose", "chatty");
    EXPECT_TRUE(flags.parse({}));
    EXPECT_EQ(flags.getString("gpu"), "a100");
    EXPECT_EQ(flags.getInt("batch"), 1);
    EXPECT_FALSE(flags.getBool("verbose"));
}

TEST_F(FlagsQuiet, RejectsMalformedInput)
{
    FlagParser flags;
    flags.addInt("n", 0, "number");
    flags.addBool("b", "bool");
    EXPECT_FALSE(flags.parse({"--unknown", "1"}));
    FlagParser flags2;
    flags2.addInt("n", 0, "number");
    EXPECT_FALSE(flags2.parse({"--n", "abc"}));
    FlagParser flags3;
    flags3.addInt("n", 0, "number");
    EXPECT_FALSE(flags3.parse({"--n"})); // missing value
    FlagParser flags4;
    flags4.addBool("b", "bool");
    EXPECT_FALSE(flags4.parse({"--b=maybe"}));
    EXPECT_TRUE(FlagParser(flags4).parse({}));
}

TEST_F(FlagsQuiet, BoolExplicitValues)
{
    FlagParser flags;
    flags.addBool("x", "x");
    EXPECT_TRUE(flags.parse({"--x=false"}));
    EXPECT_FALSE(flags.getBool("x"));
    FlagParser flags2;
    flags2.addBool("x", "x");
    EXPECT_TRUE(flags2.parse({"--x=1"}));
    EXPECT_TRUE(flags2.getBool("x"));
}

TEST(Flags, UsageListsRegisteredFlags)
{
    FlagParser flags;
    flags.addString("model", "bert", "which model to run");
    flags.addInt("seq-len", 4096, "sequence length");
    const std::string usage = flags.usage();
    EXPECT_NE(usage.find("--model"), std::string::npos);
    EXPECT_NE(usage.find("which model to run"), std::string::npos);
    EXPECT_NE(usage.find("default 4096"), std::string::npos);
}

TEST(Flags, DuplicateRegistrationPanics)
{
    FlagParser flags;
    flags.addInt("n", 0, "n");
    EXPECT_THROW(flags.addString("n", "", "again"), std::logic_error);
}

} // namespace
} // namespace softrec
