/**
 * @file
 * Tests of the simulated GPU device (timeline, aggregation) and the
 * Table 1 hardware specs.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/gpu.hpp"

namespace softrec {
namespace {

KernelProfile
simpleKernel(const std::string &name, KernelCategory category,
             uint64_t read, uint64_t write)
{
    KernelProfile prof;
    prof.name = name;
    prof.category = category;
    prof.geom.numBlocks = 1 << 14;
    prof.geom.block.threads = 256;
    prof.dramReadBytes = read;
    prof.dramWriteBytes = write;
    return prof;
}

TEST(Gpu, TimelineAccumulatesInProgramOrder)
{
    Gpu gpu(GpuSpec::a100());
    gpu.launch(simpleKernel("a", KernelCategory::Other, 1 << 26, 0));
    gpu.launch(simpleKernel("b", KernelCategory::Softmax, 0, 1 << 26));
    ASSERT_EQ(gpu.timeline().size(), 2u);
    EXPECT_EQ(gpu.timeline()[0].profile.name, "a");
    EXPECT_DOUBLE_EQ(gpu.timeline()[0].startSeconds, 0.0);
    EXPECT_DOUBLE_EQ(gpu.timeline()[1].startSeconds,
                     gpu.timeline()[0].stats.seconds);
    EXPECT_DOUBLE_EQ(gpu.totalSeconds(),
                     gpu.timeline()[0].stats.seconds +
                         gpu.timeline()[1].stats.seconds);
}

TEST(Gpu, TrafficTotals)
{
    Gpu gpu(GpuSpec::a100());
    gpu.launch(simpleKernel("a", KernelCategory::Other, 100, 50));
    gpu.launch(simpleKernel("b", KernelCategory::Other, 10, 5));
    EXPECT_EQ(gpu.totalDramReadBytes(), 110u);
    EXPECT_EQ(gpu.totalDramWriteBytes(), 55u);
    EXPECT_EQ(gpu.totalDramBytes(), 165u);
}

TEST(Gpu, CategoryAggregation)
{
    Gpu gpu(GpuSpec::a100());
    gpu.launch(simpleKernel("s1", KernelCategory::Softmax, 1000, 0));
    gpu.launch(simpleKernel("s2", KernelCategory::Softmax, 0, 2000));
    gpu.launch(simpleKernel("m", KernelCategory::SdaMatMul, 500, 500));
    const auto by_cat = gpu.byCategory();
    ASSERT_EQ(by_cat.size(), 2u);
    const auto &softmax = by_cat.at(KernelCategory::Softmax);
    EXPECT_EQ(softmax.launches, 2);
    EXPECT_EQ(softmax.dramReadBytes, 1000u);
    EXPECT_EQ(softmax.dramWriteBytes, 2000u);
    EXPECT_EQ(softmax.dramBytes(), 3000u);
    EXPECT_GT(gpu.secondsIn(KernelCategory::Softmax), 0.0);
    EXPECT_EQ(gpu.dramBytesIn(KernelCategory::SdaMatMul), 1000u);
    EXPECT_EQ(gpu.dramBytesIn(KernelCategory::FeedForward), 0u);
}

TEST(Gpu, CountLaunchesBySubstring)
{
    Gpu gpu(GpuSpec::a100());
    gpu.launch(simpleKernel("sda.qk", KernelCategory::SdaMatMul, 1, 1));
    gpu.launch(simpleKernel("sda.qk+ls", KernelCategory::SdaMatMul, 1,
                            1));
    gpu.launch(simpleKernel("ff.1", KernelCategory::FeedForward, 1, 1));
    EXPECT_EQ(gpu.countLaunches("sda.qk"), 2);
    EXPECT_EQ(gpu.countLaunches("+ls"), 1);
    EXPECT_EQ(gpu.countLaunches("missing"), 0);
}

TEST(Gpu, ResetClearsEverything)
{
    Gpu gpu(GpuSpec::t4());
    gpu.launch(simpleKernel("a", KernelCategory::Other, 100, 100));
    gpu.reset();
    EXPECT_TRUE(gpu.timeline().empty());
    EXPECT_DOUBLE_EQ(gpu.totalSeconds(), 0.0);
    EXPECT_EQ(gpu.totalDramBytes(), 0u);
}

TEST(GpuSpec, Table1Values)
{
    const GpuSpec a100 = GpuSpec::a100();
    EXPECT_EQ(a100.name, "A100");
    EXPECT_DOUBLE_EQ(a100.dramBandwidth, 1555e9);
    EXPECT_DOUBLE_EQ(a100.fp16CudaFlops, 42.3e12);
    EXPECT_DOUBLE_EQ(a100.fp16TensorFlops, 169e12);
    EXPECT_EQ(a100.l1PerSm, 192 * KiB);
    EXPECT_EQ(a100.l2Bytes, 40 * MiB);
    EXPECT_EQ(a100.numSms, 108);
    EXPECT_EQ(a100.maxWarpsPerSm(), 64);

    const GpuSpec rtx = GpuSpec::rtx3090();
    EXPECT_DOUBLE_EQ(rtx.dramBandwidth, 936.2e9);
    EXPECT_DOUBLE_EQ(rtx.fp16TensorFlops, 58e12);
    EXPECT_EQ(rtx.l2Bytes, 6 * MiB);

    const GpuSpec t4 = GpuSpec::t4();
    EXPECT_DOUBLE_EQ(t4.dramBandwidth, 320e9);
    EXPECT_DOUBLE_EQ(t4.fp16CudaFlops, 24e12);
    EXPECT_DOUBLE_EQ(t4.fp16TensorFlops, 24e12);
    EXPECT_EQ(t4.l1PerSm, 64 * KiB);
    EXPECT_EQ(t4.l2Bytes, 4 * MiB);
}

TEST(GpuSpec, AllReturnsThreeGpusA100First)
{
    const auto specs = GpuSpec::all();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].name, "A100");
    EXPECT_EQ(specs[1].name, "RTX 3090");
    EXPECT_EQ(specs[2].name, "T4");
    for (const GpuSpec &spec : specs) {
        EXPECT_GT(spec.dramEnergyPerByte, 0.0);
        EXPECT_GT(spec.numSms, 0);
        EXPECT_GT(spec.regsPerSm, 0);
    }
}

} // namespace
} // namespace softrec
