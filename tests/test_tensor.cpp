/**
 * @file
 * Tests of the tensor library and its convenience operations.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

TEST(Shape, BasicProperties)
{
    const Shape s({4, 8, 16});
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.numel(), 512);
    EXPECT_EQ(s.dim(0), 4);
    EXPECT_EQ(s.dim(2), 16);
    EXPECT_EQ(s.dim(-1), 16);
    EXPECT_EQ(s.dim(-3), 4);
    EXPECT_EQ(s.toString(), "[4, 8, 16]");
}

TEST(Shape, RowMajorStrides)
{
    const Shape s({4, 8, 16});
    const auto strides = s.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 128);
    EXPECT_EQ(strides[1], 16);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EmptyShapeIsScalar)
{
    const Shape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
}

TEST(Shape, RejectsNonPositiveDims)
{
    EXPECT_THROW(Shape({4, 0}), std::logic_error);
    EXPECT_THROW(Shape({-1}), std::logic_error);
}

TEST(Shape, DimOutOfRangePanics)
{
    const Shape s({2, 2});
    EXPECT_THROW(s.dim(2), std::logic_error);
    EXPECT_THROW(s.dim(-3), std::logic_error);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor<float> t(Shape({3, 3}));
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillValueConstructor)
{
    Tensor<float> t(Shape({5}), 2.5f);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(t.at(i), 2.5f);
}

TEST(Tensor, TwoDimensionalAccess)
{
    Tensor<float> t(Shape({2, 3}));
    t.at(1, 2) = 7.0f;
    t.at(0, 0) = 1.0f;
    EXPECT_EQ(t.at(1, 2), 7.0f);
    EXPECT_EQ(t.at(5), 7.0f); // linear view of (1, 2)
    EXPECT_EQ(t.at(0), 1.0f);
}

TEST(Tensor, ThreeDimensionalAccess)
{
    Tensor<float> t(Shape({2, 3, 4}));
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t.at(23), 9.0f);
}

TEST(Tensor, OutOfRangePanics)
{
    // Accessor bounds are SOFTREC_CHECK: enforced only when compiled
    // with -DSOFTREC_CHECKED_BUILD=ON. test_checked_build forces the
    // define on and proves the checks fire in every configuration.
    if (!kCheckedBuild)
        GTEST_SKIP() << "bounds checks need SOFTREC_CHECKED_BUILD";
    Tensor<float> t(Shape({2, 2}));
    EXPECT_THROW(t.at(4), std::logic_error);
    EXPECT_THROW(t.at(2, 0), std::logic_error);
    EXPECT_THROW(t.at(0, 0, 0), std::logic_error); // wrong rank
}

TEST(Tensor, FillOverwritesEverything)
{
    Tensor<float> t(Shape({4}), 1.0f);
    t.fill(3.0f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.at(i), 3.0f);
}

TEST(TensorOps, HalfRoundTripPreservesRepresentableValues)
{
    Tensor<float> t(Shape({4}));
    t.at(0) = 1.5f;
    t.at(1) = -0.25f;
    t.at(2) = 1024.0f;
    t.at(3) = 0.0f;
    const Tensor<float> back = toFloat(toHalf(t));
    EXPECT_EQ(maxAbsDiff(t, back), 0.0);
}

TEST(TensorOps, FillNormalIsDeterministicPerSeed)
{
    Tensor<float> a(Shape({64})), b(Shape({64}));
    Rng r1(5), r2(5);
    fillNormal(a, r1);
    fillNormal(b, r2);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);
}

TEST(TensorOps, FillUniformRespectsBounds)
{
    Tensor<float> t(Shape({1000}));
    Rng rng(6);
    fillUniform(t, rng, -2.0, 3.0);
    for (int64_t i = 0; i < t.numel(); ++i) {
        ASSERT_GE(t.at(i), -2.0f);
        ASSERT_LT(t.at(i), 3.0f);
    }
}

TEST(TensorOps, MaxAbsAndRelDiff)
{
    Tensor<float> a(Shape({3})), b(Shape({3}));
    a.at(0) = 1.0f;
    b.at(0) = 1.1f;
    a.at(1) = -2.0f;
    b.at(1) = -2.0f;
    a.at(2) = 100.0f;
    b.at(2) = 101.0f;
    EXPECT_NEAR(maxAbsDiff(a, b), 1.0, 1e-6);
    EXPECT_NEAR(maxRelDiff(a, b), 0.1 / 1.1, 1e-5);
}

TEST(TensorOps, MaxAbsDiffShapeMismatchPanics)
{
    Tensor<float> a(Shape({2})), b(Shape({3}));
    EXPECT_THROW(maxAbsDiff(a, b), std::logic_error);
}

TEST(TensorOps, AllCloseSemantics)
{
    Tensor<float> a(Shape({2})), b(Shape({2}));
    a.at(0) = 1.0f;
    b.at(0) = 1.0f + 1e-7f;
    a.at(1) = 0.0f;
    b.at(1) = 1e-9f;
    EXPECT_TRUE(allClose(a, b));
    b.at(1) = 0.1f;
    EXPECT_FALSE(allClose(a, b));
    // NaN never compares close.
    b.at(1) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(allClose(a, b));
    // Shape mismatch is just "not close".
    Tensor<float> c(Shape({3}));
    EXPECT_FALSE(allClose(a, c));
}

} // namespace
} // namespace softrec
