/**
 * @file
 * Tests of the kernel cost model: roofline terms, bandwidth derates,
 * wave quantization, imbalance amortization, and fused penalties.
 */

#include <gtest/gtest.h>

#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"

namespace softrec {
namespace {

/** A saturated streaming kernel moving `bytes` of traffic. */
KernelProfile
streamingProfile(uint64_t bytes)
{
    KernelProfile prof;
    prof.name = "stream";
    prof.geom.numBlocks = 1 << 16;
    prof.geom.block.threads = 256;
    prof.geom.block.regsPerThread = 32;
    prof.dramReadBytes = bytes / 2;
    prof.dramWriteBytes = bytes - bytes / 2;
    return prof;
}

TEST(CostModel, SaturatedStreamHitsStreamEfficiency)
{
    const GpuSpec spec = GpuSpec::a100();
    const uint64_t bytes = 1ull << 30;
    const KernelStats stats =
        evaluateKernel(spec, streamingProfile(bytes));
    const double expected =
        double(bytes) / (spec.dramBandwidth * calib::kStreamEfficiency);
    EXPECT_NEAR(stats.dramSeconds, expected, expected * 0.06);
    EXPECT_EQ(stats.bound, TimeBound::Memory);
    EXPECT_GT(stats.bandwidthUtilization, 0.8);
}

TEST(CostModel, SerializationLowersBandwidth)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof = streamingProfile(1ull << 30);
    const double base = evaluateKernel(spec, prof).dramSeconds;
    prof.serializationFactor = 0.5;
    const double slowed = evaluateKernel(spec, prof).dramSeconds;
    EXPECT_NEAR(slowed, base * 2.0, base * 0.01);
}

TEST(CostModel, IdleLanesLowerMemoryParallelism)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof = streamingProfile(1ull << 28);
    // Constrain occupancy so lane utilization actually bites: one row
    // per TB with big smem staging, like the sparse baseline softmax.
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes = 16 * 1024;
    const double full = evaluateKernel(spec, prof).dramSeconds;
    prof.laneUtilization = 0.125;
    const double sparse_lanes = evaluateKernel(spec, prof).dramSeconds;
    EXPECT_GT(sparse_lanes, full * 2.0);
}

TEST(CostModel, MemoryParallelismHasFloor)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof = streamingProfile(1ull << 28);
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes = 32 * 1024;
    prof.laneUtilization = 1e-3;
    const KernelStats stats = evaluateKernel(spec, prof);
    const double worst_case =
        double(prof.dramBytes()) /
        (spec.dramBandwidth * calib::kStreamEfficiency *
         calib::kMinMemoryParallelism);
    EXPECT_LE(stats.dramSeconds, worst_case * 1.01);
}

TEST(CostModel, TensorKernelsIgnoreWarpMlp)
{
    // A GEMM with few resident warps must still stream at full rate.
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof = streamingProfile(1ull << 28);
    prof.geom.block.threads = 256;
    prof.geom.block.regsPerThread = 128; // 2 TBs/SM -> 16 warps
    prof.tensorFlops = 1e6;              // token tensor work
    prof.gemmEfficiency = 0.8;
    const KernelStats stats = evaluateKernel(spec, prof);
    const double expected = double(prof.dramBytes()) /
                            (spec.dramBandwidth *
                             calib::kStreamEfficiency);
    EXPECT_NEAR(stats.dramSeconds, expected, expected * 0.06);
}

TEST(CostModel, TensorTimeMatchesEfficiencyClass)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof;
    prof.name = "gemm";
    prof.geom.numBlocks = 1 << 16;
    prof.geom.block.threads = 256;
    prof.tensorFlops = 1e12;
    prof.gemmEfficiency = 0.8;
    const KernelStats stats = evaluateKernel(spec, prof);
    const double expected = 1e12 / (spec.fp16TensorFlops * 0.8);
    EXPECT_NEAR(stats.tensorSeconds, expected, expected * 0.01);
    EXPECT_EQ(stats.bound, TimeBound::TensorCore);
}

TEST(CostModel, FusedPenaltyScalesTensorTime)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof;
    prof.geom.numBlocks = 1 << 16;
    prof.geom.block.threads = 256;
    prof.tensorFlops = 1e12;
    prof.gemmEfficiency = 0.8;
    const double plain = evaluateKernel(spec, prof).tensorSeconds;
    prof.fusedPenalty = 1.42;
    const double fused = evaluateKernel(spec, prof).tensorSeconds;
    EXPECT_NEAR(fused / plain, 1.42, 1e-9);
}

TEST(CostModel, CudaAndSfuTermsAdd)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof;
    prof.geom.numBlocks = 1 << 16;
    prof.geom.block.threads = 256;
    prof.cudaFlops = 1e12;
    prof.sfuOps = 1e10;
    const KernelStats stats = evaluateKernel(spec, prof);
    const double expected =
        1e12 / (spec.fp16CudaFlops * calib::kCudaEfficiency) +
        1e10 / (spec.fp16CudaFlops * calib::kSfuRateFraction);
    EXPECT_NEAR(stats.cudaSeconds, expected, expected * 1e-9);
    EXPECT_EQ(stats.bound, TimeBound::CudaCore);
}

TEST(CostModel, TinyKernelIsLaunchBound)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof;
    prof.geom.numBlocks = 1;
    prof.geom.block.threads = 32;
    prof.dramReadBytes = 64;
    const KernelStats stats = evaluateKernel(spec, prof);
    EXPECT_EQ(stats.bound, TimeBound::Launch);
    EXPECT_GE(stats.seconds, calib::kKernelLaunchOverhead);
}

TEST(CostModel, ImbalanceAmortizesOverWaves)
{
    const GpuSpec spec = GpuSpec::a100();
    // Single-wave kernel: imbalance bites fully.
    KernelProfile one_wave = streamingProfile(1ull << 26);
    one_wave.geom.numBlocks = 200; // under one wave on A100
    one_wave.geom.block.threads = 256;
    one_wave.workImbalance = 8.0;
    KernelProfile balanced = one_wave;
    balanced.workImbalance = 1.0;
    const double imb =
        evaluateKernel(spec, one_wave).dramSeconds;
    const double flat =
        evaluateKernel(spec, balanced).dramSeconds;
    EXPECT_GT(imb, flat * 1.5);

    // Many-wave kernel: same imbalance nearly disappears.
    KernelProfile many = one_wave;
    many.geom.numBlocks = 1 << 17;
    KernelProfile many_flat = many;
    many_flat.workImbalance = 1.0;
    const double many_imb = evaluateKernel(spec, many).dramSeconds;
    const double many_base =
        evaluateKernel(spec, many_flat).dramSeconds;
    EXPECT_LT(many_imb, many_base * 1.05);
}

TEST(WaveEfficiency, QuantizationShape)
{
    EXPECT_DOUBLE_EQ(waveEfficiency(216, 216), 1.0);
    EXPECT_DOUBLE_EQ(waveEfficiency(108, 216), 0.5);
    // 217 blocks on 216 slots: two waves, mostly idle second wave.
    EXPECT_NEAR(waveEfficiency(217, 216), 217.0 / 432.0, 1e-12);
    EXPECT_DOUBLE_EQ(waveEfficiency(432, 216), 1.0);
}

TEST(RowSoftmaxSerialization, DecreasesWithRowLength)
{
    const double at512 = rowSoftmaxSerialization(512);
    const double at4096 = rowSoftmaxSerialization(4096);
    const double at8192 = rowSoftmaxSerialization(8192);
    EXPECT_DOUBLE_EQ(at512, calib::kRowSoftmaxBaseEff);
    EXPECT_DOUBLE_EQ(rowSoftmaxSerialization(64),
                     calib::kRowSoftmaxBaseEff);
    EXPECT_GT(at512, at4096);
    EXPECT_GT(at4096, at8192);
    // Calibrated value at L = 4096 (drives the paper's Fig. 8 dense
    // numbers); guard against accidental recalibration.
    EXPECT_NEAR(at4096, 0.569, 0.01);
}

TEST(CostModel, InvalidProfilesPanic)
{
    const GpuSpec spec = GpuSpec::a100();
    KernelProfile prof;
    prof.geom.numBlocks = 16;
    prof.geom.block.threads = 128;
    prof.tensorFlops = 1e9; // missing efficiency class
    EXPECT_THROW(evaluateKernel(spec, prof), std::logic_error);

    KernelProfile bad_lane = streamingProfile(1024);
    bad_lane.laneUtilization = 0.0;
    EXPECT_THROW(evaluateKernel(spec, bad_lane), std::logic_error);

    KernelProfile bad_serial = streamingProfile(1024);
    bad_serial.serializationFactor = 1.5;
    EXPECT_THROW(evaluateKernel(spec, bad_serial), std::logic_error);
}

} // namespace
} // namespace softrec
