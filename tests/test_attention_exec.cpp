/**
 * @file
 * End-to-end functional equivalence of the three strategies: dense and
 * block-sparse attention must produce the same output under Baseline,
 * SD, and SDF (up to fp16 rounding), and match a double-precision
 * reference.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

AttentionInputs
randomInputs(const SdaConfig &config, uint64_t seed)
{
    AttentionInputs inputs = makeAttentionInputs(config);
    Rng rng(seed);
    fillNormal(inputs.q, rng, 0.0, 0.8);
    fillNormal(inputs.k, rng, 0.0, 0.8);
    fillNormal(inputs.v, rng, 0.0, 0.8);
    return inputs;
}

/** Attention outputs are O(1); compare with a small absolute bound. */
constexpr double kTol = 2.5e-2;

class DenseStrategies
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, bool>>
{};

TEST_P(DenseStrategies, AllMatchDoubleReference)
{
    const auto [L, t, causal] = GetParam();
    SdaConfig config;
    config.seqLen = L;
    config.dHead = 32;
    config.subVector = t;
    config.causalMask = causal;
    config.attnTiling.tileM = 32;
    config.attnTiling.tileN = t;
    config.attnTiling.tileK = 16;
    const AttentionInputs inputs =
        randomInputs(config, uint64_t(L * 31 + t + causal));

    const Tensor<float> reference =
        referenceDenseAttention(config, inputs);
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), config, inputs, strategy);
        EXPECT_LT(maxAbsDiff(toFloat(out), reference), kTol)
            << strategyName(strategy) << " L=" << L << " t=" << t
            << " causal=" << causal;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DenseStrategies,
    ::testing::Combine(::testing::Values(64, 128, 192),
                       ::testing::Values(16, 32, 64),
                       ::testing::Bool()));

TEST(DenseStrategies, PairwiseAgreement)
{
    SdaConfig config;
    config.seqLen = 96;
    config.dHead = 16;
    config.subVector = 32;
    config.attnTiling.tileM = 32;
    config.attnTiling.tileN = 32;
    config.attnTiling.tileK = 16;
    const AttentionInputs inputs = randomInputs(config, 7);

    const auto baseline =
        toFloat(runAttention(execCtx(), config, inputs, Strategy::Baseline));
    const auto sd = toFloat(
        runAttention(execCtx(), config, inputs, Strategy::Decomposed));
    const auto sdf =
        toFloat(runAttention(execCtx(), config, inputs, Strategy::Fused));
    EXPECT_LT(maxAbsDiff(baseline, sd), kTol);
    EXPECT_LT(maxAbsDiff(baseline, sdf), kTol);
    EXPECT_LT(maxAbsDiff(sd, sdf), kTol);
}

TEST(DenseStrategies, CausalFirstRowAttendsOnlyToItself)
{
    SdaConfig config;
    config.seqLen = 64;
    config.dHead = 16;
    config.causalMask = true;
    config.subVector = 16;
    config.attnTiling.tileM = 16;
    config.attnTiling.tileN = 16;
    config.attnTiling.tileK = 16;
    const AttentionInputs inputs = randomInputs(config, 8);
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), config, inputs, strategy);
        // Row 0 sees only token 0, so output row 0 = V row 0.
        for (int64_t d = 0; d < config.dHead; ++d) {
            EXPECT_NEAR(float(out.at(0, d)),
                        float(inputs.v.at(0, d)), 5e-3)
                << strategyName(strategy);
        }
    }
}

class SparseStrategies : public ::testing::TestWithParam<int>
{};

TEST_P(SparseStrategies, AllMatchSparseReference)
{
    BigBirdParams params;
    params.blockSize = 16;
    params.windowBlocks = 1;
    params.globalBlocks = 1;
    params.randomBlocks = 1;
    params.seed = uint64_t(GetParam());
    const BsrLayout layout = bigBirdPattern(128, params);

    SdaConfig config;
    config.seqLen = 128;
    config.dHead = 16;
    config.layout = &layout;
    config.subVector = 16;
    const AttentionInputs inputs =
        randomInputs(config, uint64_t(GetParam()) + 100);

    const Tensor<float> reference =
        referenceSparseAttention(config, inputs);
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), config, inputs, strategy);
        EXPECT_LT(maxAbsDiff(toFloat(out), reference), kTol)
            << strategyName(strategy) << " seed=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseStrategies,
                         ::testing::Values(1, 2, 3));

TEST(SparseStrategies, LongformerLayoutToo)
{
    LongformerParams params;
    params.blockSize = 16;
    params.windowTokens = 64;
    params.globalBlocks = 1;
    const BsrLayout layout = longformerPattern(160, params);

    SdaConfig config;
    config.seqLen = 160;
    config.dHead = 8;
    config.layout = &layout;
    config.subVector = 16;
    const AttentionInputs inputs = randomInputs(config, 55);
    const Tensor<float> reference =
        referenceSparseAttention(config, inputs);
    for (Strategy strategy : allStrategies()) {
        EXPECT_LT(maxAbsDiff(toFloat(runAttention(execCtx(),
                                 config, inputs, strategy)),
                             reference),
                  kTol)
            << strategyName(strategy);
    }
}

TEST(SparseStrategies, DenseLayoutReproducesDenseAttention)
{
    // A fully dense "sparse" layout must agree with the dense path.
    const BsrLayout layout = densePattern(64, 16);
    SdaConfig sparse;
    sparse.seqLen = 64;
    sparse.dHead = 16;
    sparse.layout = &layout;
    sparse.subVector = 16;
    SdaConfig dense = sparse;
    dense.layout = nullptr;
    dense.attnTiling.tileM = 16;
    dense.attnTiling.tileN = 16;
    dense.attnTiling.tileK = 16;
    const AttentionInputs inputs = randomInputs(sparse, 77);
    const auto from_sparse = toFloat(
        runAttention(execCtx(), sparse, inputs, Strategy::Fused));
    const auto from_dense =
        toFloat(runAttention(execCtx(), dense, inputs, Strategy::Fused));
    EXPECT_LT(maxAbsDiff(from_sparse, from_dense), kTol);
}

} // namespace
} // namespace softrec
