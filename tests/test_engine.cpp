/**
 * @file
 * Tests of the inference engine's aggregation and strategy effects.
 */

#include <gtest/gtest.h>

#include "model/engine.hpp"

namespace softrec {
namespace {

TEST(Engine, AggregatesMatchDirectRun)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::bertLarge();
    RunConfig run;
    run.seqLen = 1024;
    const InferenceResult result = runInference(spec, model, run);

    TransformerScheduler sched(spec, model, run);
    Gpu gpu(spec);
    sched.run(gpu);
    EXPECT_DOUBLE_EQ(result.seconds, gpu.totalSeconds());
    EXPECT_EQ(result.dramReadBytes, gpu.totalDramReadBytes());
    EXPECT_EQ(result.dramWriteBytes, gpu.totalDramWriteBytes());
    EXPECT_EQ(result.kernelLaunches, int64_t(gpu.timeline().size()));
    EXPECT_EQ(result.modelName, "BERT-large");
    EXPECT_EQ(result.gpuName, "A100");
}

TEST(Engine, CategorySecondsSumToTotal)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    const InferenceResult result =
        runInference(spec, ModelConfig::bertLarge(), run);
    double sum = 0.0;
    for (const auto &[category, totals] : result.categories)
        sum += totals.seconds;
    EXPECT_NEAR(sum, result.seconds, result.seconds * 1e-9);
}

TEST(Engine, EnergyIsTrafficTimesPerByteCost)
{
    const GpuSpec spec = GpuSpec::rtx3090();
    RunConfig run;
    run.seqLen = 1024;
    const InferenceResult result =
        runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_DOUBLE_EQ(result.offChipEnergyJoules,
                     double(result.dramBytes()) *
                         spec.dramEnergyPerByte);
}

TEST(Engine, SoftmaxAccessorsCoverAllStrategies)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    run.strategy = Strategy::Baseline;
    const auto base =
        runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_GT(base.softmaxSeconds(), 0.0);
    EXPECT_GT(base.secondsIn(KernelCategory::Softmax), 0.0);
    EXPECT_EQ(base.secondsIn(KernelCategory::SoftmaxLs), 0.0);

    run.strategy = Strategy::Decomposed;
    const auto sd = runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_EQ(sd.secondsIn(KernelCategory::Softmax), 0.0);
    EXPECT_GT(sd.secondsIn(KernelCategory::SoftmaxLs), 0.0);
    EXPECT_GT(sd.secondsIn(KernelCategory::SoftmaxIr), 0.0);
    EXPECT_GT(sd.secondsIn(KernelCategory::SoftmaxGs), 0.0);
    EXPECT_GT(sd.softmaxSeconds(), 0.0);

    run.strategy = Strategy::Fused;
    const auto sdf = runInference(spec, ModelConfig::bertLarge(), run);
    // Only IR remains as softmax-category work under SDF.
    EXPECT_EQ(sdf.secondsIn(KernelCategory::SoftmaxLs), 0.0);
    EXPECT_GT(sdf.secondsIn(KernelCategory::SoftmaxIr), 0.0);
    EXPECT_LT(sdf.softmaxSeconds(), base.softmaxSeconds() * 0.2);
}

TEST(Engine, AttentionSweepsReported)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    run.strategy = Strategy::Fused;
    const auto result =
        runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_EQ(result.attentionSweeps, 2);
}

TEST(Engine, SdfReducesTrafficAndEnergy)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    run.strategy = Strategy::Baseline;
    const auto base =
        runInference(spec, ModelConfig::bertLarge(), run);
    run.strategy = Strategy::Fused;
    const auto sdf = runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_LT(sdf.dramBytes(), base.dramBytes());
    EXPECT_LT(sdf.offChipEnergyJoules, base.offChipEnergyJoules);
    EXPECT_LT(sdf.seconds, base.seconds);
}

TEST(Engine, BatchScalesWorkSuperLinearly)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    run.batch = 1;
    const auto b1 = runInference(spec, ModelConfig::bertLarge(), run);
    run.batch = 4;
    const auto b4 = runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_GT(b4.seconds, b1.seconds * 2.0);
    EXPECT_EQ(b4.dramBytesIn(KernelCategory::Softmax),
              4 * b1.dramBytesIn(KernelCategory::Softmax));
}

TEST(Engine, ResultAccessorsHandleAbsentCategories)
{
    InferenceResult empty;
    EXPECT_EQ(empty.secondsIn(KernelCategory::Softmax), 0.0);
    EXPECT_EQ(empty.dramBytesIn(KernelCategory::Fc), 0u);
    EXPECT_EQ(empty.softmaxSeconds(), 0.0);
    EXPECT_EQ(empty.sdaSeconds(), 0.0);
    EXPECT_EQ(empty.dramBytes(), 0u);
}

} // namespace
} // namespace softrec
