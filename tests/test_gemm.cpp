/**
 * @file
 * Tests of the dense GEMM kernel: functional correctness against a
 * naive reference (including every epilogue/prologue), and the
 * analytical profile's traffic/FLOP accounting.
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "kernels/gemm.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sim/calibration.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

/** Naive fp32 reference: C = op(A, B) with the same epilogue. */
Tensor<float>
referenceGemm(const GemmDesc &desc, const GemmOperands &ops)
{
    Tensor<float> out(Shape({desc.m, desc.n}));
    for (int64_t i = 0; i < desc.m; ++i) {
        for (int64_t j = 0; j < desc.n; ++j) {
            float acc = 0.0f;
            for (int64_t kk = 0; kk < desc.k; ++kk) {
                float a = float(ops.a->at(i, kk));
                if (desc.prologue.globalScale) {
                    a *= ops.gsFactors->at(
                        i, kk / desc.prologue.gsSubVector);
                }
                const float b = ops.transposeB
                    ? float(ops.b->at(j, kk))
                    : float(ops.b->at(kk, j));
                acc += a * b;
            }
            if (desc.epilogue.scale != 1.0)
                acc *= float(desc.epilogue.scale);
            if (desc.epilogue.causalMask && j > i)
                acc = -std::numeric_limits<float>::infinity();
            if (desc.epilogue.bias)
                acc += ops.bias->at(j);
            if (desc.epilogue.gelu)
                acc = geluApprox(acc);
            out.at(i, j) = acc;
        }
    }
    return out;
}

GemmDesc
smallDesc(int64_t m, int64_t n, int64_t k)
{
    GemmDesc desc;
    desc.m = m;
    desc.n = n;
    desc.k = k;
    desc.tiling.tileM = 16;
    desc.tiling.tileN = 8;
    desc.tiling.tileK = 4;
    return desc;
}

struct MadeOperands
{
    Tensor<Half> a{Shape({1})};
    Tensor<Half> b{Shape({1})};
    Tensor<float> bias{Shape({1})};
};

MadeOperands
makeOperands(const GemmDesc &desc, Rng &rng, bool transpose_b)
{
    MadeOperands made;
    made.a = Tensor<Half>(Shape({desc.m, desc.k}));
    made.b = transpose_b ? Tensor<Half>(Shape({desc.n, desc.k}))
                         : Tensor<Half>(Shape({desc.k, desc.n}));
    made.bias = Tensor<float>(Shape({desc.n}));
    fillNormal(made.a, rng, 0.0, 0.5);
    fillNormal(made.b, rng, 0.0, 0.5);
    for (int64_t j = 0; j < desc.n; ++j)
        made.bias.at(j) = float(rng.normal(0.0, 0.3));
    return made;
}

TEST(GemmRun, PlainMatchesReference)
{
    Rng rng(1);
    GemmDesc desc = smallDesc(33, 17, 21); // ragged vs tiles
    MadeOperands made = makeOperands(desc, rng, false);
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    Tensor<Half> c(Shape({desc.m, desc.n}));
    gemmRun(execCtx(), desc, ops, c);
    const Tensor<float> ref = referenceGemm(desc, ops);
    EXPECT_LT(maxAbsDiff(toFloat(c), ref), 0.02);
}

TEST(GemmRun, TransposedBMatchesReference)
{
    Rng rng(2);
    GemmDesc desc = smallDesc(24, 24, 16);
    MadeOperands made = makeOperands(desc, rng, true);
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    ops.transposeB = true;
    Tensor<Half> c(Shape({desc.m, desc.n}));
    gemmRun(execCtx(), desc, ops, c);
    EXPECT_LT(maxAbsDiff(toFloat(c), referenceGemm(desc, ops)), 0.02);
}

TEST(GemmRun, ScaleMaskBiasGeluEpilogue)
{
    Rng rng(3);
    GemmDesc desc = smallDesc(20, 12, 8);
    desc.epilogue.scale = 0.125;
    desc.epilogue.bias = true;
    desc.epilogue.gelu = true;
    MadeOperands made = makeOperands(desc, rng, false);
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    ops.bias = &made.bias;
    Tensor<Half> c(Shape({desc.m, desc.n}));
    gemmRun(execCtx(), desc, ops, c);
    EXPECT_LT(maxAbsDiff(toFloat(c), referenceGemm(desc, ops)), 0.02);
}

TEST(GemmRun, CausalMaskZeroesUpperTriangleAfterSoftmax)
{
    Rng rng(4);
    GemmDesc desc = smallDesc(16, 16, 8);
    desc.epilogue.scale = 0.3;
    desc.epilogue.causalMask = true;
    desc.epilogue.localSoftmax = true;
    desc.tiling.tileN = 8;
    MadeOperands made = makeOperands(desc, rng, true);
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    ops.transposeB = true;
    Tensor<Half> c(Shape({16, 16}));
    Tensor<float> lmax(Shape({16, 2})), lsum(Shape({16, 2}));
    LsOutputs ls{&lmax, &lsum};
    gemmRun(execCtx(), desc, ops, c, &ls);
    // Masked positions produce X' = 0.
    for (int64_t i = 0; i < 16; ++i)
        for (int64_t j = i + 1; j < 16; ++j)
            EXPECT_TRUE(c.at(i, j).isZero()) << i << "," << j;
    // A fully masked sub-vector yields d' = 0.
    EXPECT_EQ(lsum.at(0, 1), 0.0f);
    EXPECT_GT(lsum.at(0, 0), 0.0f); // one unmasked element
}

TEST(GemmRun, FusedLsMatchesStandaloneLsKernel)
{
    Rng rng(5);
    GemmDesc desc = smallDesc(32, 32, 16);
    desc.epilogue.scale = 0.25;
    desc.tiling.tileN = 8; // T = 8
    MadeOperands made = makeOperands(desc, rng, true);
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    ops.transposeB = true;

    // Path 1: plain GEMM then standalone LS.
    Tensor<Half> scores(Shape({32, 32}));
    gemmRun(execCtx(), desc, ops, scores);
    SoftmaxShape sub;
    sub.rows = 32;
    sub.cols = 32;
    sub.subVector = 8;
    Tensor<Half> x_ref(Shape({32, 32}));
    Tensor<float> m_ref(Shape({32, 4})), d_ref(Shape({32, 4}));
    lsRun(execCtx(), sub, scores, x_ref, m_ref, d_ref);

    // Path 2: fused LS epilogue.
    GemmDesc fused = desc;
    fused.epilogue.localSoftmax = true;
    Tensor<Half> x_fused(Shape({32, 32}));
    Tensor<float> m_fused(Shape({32, 4})), d_fused(Shape({32, 4}));
    LsOutputs ls{&m_fused, &d_fused};
    gemmRun(execCtx(), fused, ops, x_fused, &ls);

    // The fused path sees un-rounded fp32 scores, the standalone path
    // fp16-rounded ones; tolerances reflect that single rounding.
    EXPECT_LT(maxAbsDiff(toFloat(x_fused), toFloat(x_ref)), 5e-3);
    EXPECT_LT(maxAbsDiff(m_fused, m_ref), 2e-3);
    EXPECT_LT(maxRelDiff(d_fused, d_ref, 1e-3), 2e-2);
}

TEST(GemmRun, GsPrologueMatchesReference)
{
    Rng rng(6);
    GemmDesc desc = smallDesc(16, 12, 32);
    desc.prologue.globalScale = true;
    desc.prologue.gsSubVector = 8;
    MadeOperands made = makeOperands(desc, rng, false);
    Tensor<float> recon(Shape({16, 4}));
    for (int64_t i = 0; i < recon.numel(); ++i)
        recon.at(i) = float(rng.uniform(0.0, 0.2));
    GemmOperands ops;
    ops.a = &made.a;
    ops.b = &made.b;
    ops.gsFactors = &recon;
    Tensor<Half> c(Shape({16, 12}));
    gemmRun(execCtx(), desc, ops, c);
    EXPECT_LT(maxAbsDiff(toFloat(c), referenceGemm(desc, ops)), 0.02);
}

TEST(GemmRun, ShapeMismatchesPanic)
{
    GemmDesc desc = smallDesc(8, 8, 8);
    Tensor<Half> a(Shape({8, 8})), b(Shape({8, 8})), c(Shape({8, 8}));
    Tensor<Half> bad(Shape({4, 4}));
    GemmOperands ops;
    ops.a = &bad;
    ops.b = &b;
    EXPECT_THROW(gemmRun(execCtx(), desc, ops, c), std::logic_error);
    ops.a = &a;
    desc.batch = 2;
    EXPECT_THROW(gemmRun(execCtx(), desc, ops, c), std::logic_error);
}

// ---------- profile tests ----------

TEST(GemmProfile, GeometryAndFlops)
{
    const GpuSpec spec = GpuSpec::a100();
    GemmDesc desc;
    desc.batch = 16;
    desc.m = 4096;
    desc.n = 4096;
    desc.k = 64;
    desc.shapeClass = GemmShapeClass::Attention;
    const KernelProfile prof = gemmProfile(spec, desc);
    // 32 x 64 tiles per problem, 16 problems.
    EXPECT_EQ(prof.geom.numBlocks, 16 * 32 * 64);
    EXPECT_DOUBLE_EQ(prof.tensorFlops,
                     2.0 * 16 * 4096.0 * 4096.0 * 64.0);
    EXPECT_DOUBLE_EQ(prof.gemmEfficiency, calib::kGemmEffAttention);
    EXPECT_DOUBLE_EQ(prof.fusedPenalty, 1.0);
}

TEST(GemmProfile, TrafficSmallOperandsReadOnce)
{
    const GpuSpec spec = GpuSpec::a100();
    GemmDesc desc;
    desc.batch = 1;
    desc.m = 4096;
    desc.n = 1024;
    desc.k = 1024;
    const KernelProfile prof = gemmProfile(spec, desc);
    // A (8 MiB) and B (2 MiB) both fit in L2: read once each.
    EXPECT_EQ(prof.dramReadBytes,
              uint64_t(4096 * 1024 * 2 + 1024 * 1024 * 2));
    EXPECT_EQ(prof.dramWriteBytes, uint64_t(4096 * 1024 * 2));
}

TEST(GemmProfile, AttentionMatrixLhsReadOnceViaStripReuse)
{
    // The P.V GEMM reads the 512 MiB attention matrix exactly once:
    // its per-tile-row strip fits in L2.
    const GpuSpec spec = GpuSpec::a100();
    GemmDesc desc;
    desc.batch = 16;
    desc.m = 4096;
    desc.n = 64;
    desc.k = 4096;
    desc.shapeClass = GemmShapeClass::Attention;
    const KernelProfile prof = gemmProfile(spec, desc);
    const uint64_t p_bytes = uint64_t(16) * 4096 * 4096 * 2;
    const uint64_t v_bytes = uint64_t(16) * 4096 * 64 * 2;
    EXPECT_EQ(prof.dramReadBytes, p_bytes + v_bytes);
}

TEST(GemmProfile, LsEpilogueAddsIntermediateWrites)
{
    const GpuSpec spec = GpuSpec::a100();
    GemmDesc desc;
    desc.batch = 2;
    desc.m = 1024;
    desc.n = 1024;
    desc.k = 64;
    desc.shapeClass = GemmShapeClass::Attention;
    GemmDesc fused = desc;
    fused.epilogue.localSoftmax = true;
    const uint64_t plain = gemmProfile(spec, desc).dramWriteBytes;
    const uint64_t with_ls = gemmProfile(spec, fused).dramWriteBytes;
    // m' and d': batch * m * (n / tileN) * 2 * 4 bytes.
    EXPECT_EQ(with_ls - plain, uint64_t(2 * 1024 * 16 * 2 * 4));
    // Fused penalty reflects K = 64 amortization.
    EXPECT_NEAR(gemmProfile(spec, fused).fusedPenalty,
                1.0 + calib::kFusedWorkPerElement / 64.0, 1e-12);
}

TEST(GemmProfile, GsPrologueAddsReconFactorReads)
{
    const GpuSpec spec = GpuSpec::a100();
    GemmDesc desc;
    desc.batch = 2;
    desc.m = 1024;
    desc.n = 64;
    desc.k = 1024;
    desc.shapeClass = GemmShapeClass::Attention;
    GemmDesc fused = desc;
    fused.prologue.globalScale = true;
    fused.prologue.gsSubVector = 64;
    const uint64_t plain = gemmProfile(spec, desc).dramReadBytes;
    const uint64_t with_gs = gemmProfile(spec, fused).dramReadBytes;
    EXPECT_EQ(with_gs - plain, uint64_t(2 * 1024 * 16 * 4));
    EXPECT_NEAR(gemmProfile(spec, fused).fusedPenalty,
                1.0 + calib::kFusedWorkPerElement / 64.0, 1e-12);
}

TEST(GemmProfile, EfficiencyClasses)
{
    EXPECT_DOUBLE_EQ(gemmEfficiencyOf(GemmShapeClass::LargeFc),
                     calib::kGemmEffLargeFc);
    EXPECT_DOUBLE_EQ(gemmEfficiencyOf(GemmShapeClass::Attention),
                     calib::kGemmEffAttention);
    EXPECT_DOUBLE_EQ(gemmEfficiencyOf(GemmShapeClass::AttentionWide),
                     calib::kGemmEffAttentionWide);
    EXPECT_DOUBLE_EQ(gemmEfficiencyOf(GemmShapeClass::BlockSparse),
                     calib::kGemmEffBlockSparse);
}

TEST(GemmProfile, EmptyProblemPanics)
{
    GemmDesc desc;
    desc.m = 0;
    desc.n = 8;
    desc.k = 8;
    EXPECT_THROW(gemmProfile(GpuSpec::a100(), desc), std::logic_error);
}

TEST(Gelu, KnownValues)
{
    EXPECT_NEAR(geluApprox(0.0f), 0.0f, 1e-7);
    EXPECT_NEAR(geluApprox(1.0f), 0.8412f, 1e-3);
    EXPECT_NEAR(geluApprox(-1.0f), -0.1588f, 1e-3);
    EXPECT_NEAR(geluApprox(10.0f), 10.0f, 1e-3);
    EXPECT_NEAR(geluApprox(-10.0f), 0.0f, 1e-3);
}

} // namespace
} // namespace softrec
