/**
 * @file
 * Tests of the dense softmax kernels: the baseline row softmax and the
 * decomposed LS/IR/GS pipeline, functionally and at the profile level.
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/softmax_math.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/corpus.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

/** Row softmax of the fp16 matrix in double precision. */
Tensor<float>
referenceSoftmax(const Tensor<Half> &in)
{
    const int64_t rows = in.shape().dim(0);
    const int64_t cols = in.shape().dim(1);
    Tensor<float> out(in.shape());
    for (int64_t i = 0; i < rows; ++i) {
        std::vector<double> row(static_cast<size_t>(cols), 0.0);
        for (int64_t j = 0; j < cols; ++j)
            row[size_t(j)] = double(float(in.at(i, j)));
        const auto y = safeSoftmax(row);
        for (int64_t j = 0; j < cols; ++j)
            out.at(i, j) = float(y[size_t(j)]);
    }
    return out;
}

TEST(RowSoftmax, MatchesReference)
{
    Rng rng(1);
    const Tensor<Half> in = makeAttentionScores(rng, 37, 53);
    Tensor<Half> out(in.shape());
    SoftmaxShape desc;
    desc.rows = 37;
    desc.cols = 53;
    rowSoftmaxRun(execCtx(), desc, in, out);
    EXPECT_LT(maxAbsDiff(toFloat(out), referenceSoftmax(in)), 1e-3);
}

TEST(RowSoftmax, RowsSumToOne)
{
    Rng rng(2);
    const Tensor<Half> in = makeAttentionScores(rng, 16, 128);
    Tensor<Half> out(in.shape());
    SoftmaxShape desc;
    desc.rows = 16;
    desc.cols = 128;
    rowSoftmaxRun(execCtx(), desc, in, out);
    for (int64_t i = 0; i < 16; ++i) {
        float sum = 0.0f;
        for (int64_t j = 0; j < 128; ++j)
            sum += float(out.at(i, j));
        EXPECT_NEAR(sum, 1.0f, 0.02f); // fp16 storage rounding
    }
}

TEST(RowSoftmax, FullyMaskedRowIsZero)
{
    Tensor<Half> in(Shape({2, 4}));
    for (int64_t j = 0; j < 4; ++j) {
        in.at(0, j) = Half::fromBits(0xfc00); // -inf
        in.at(1, j) = Half(float(j));
    }
    Tensor<Half> out(in.shape());
    SoftmaxShape desc;
    desc.rows = 2;
    desc.cols = 4;
    rowSoftmaxRun(execCtx(), desc, in, out);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_TRUE(out.at(0, j).isZero());
    EXPECT_GT(float(out.at(1, 3)), float(out.at(1, 0)));
}

/** LS -> IR -> GS on fp16 storage vs the baseline kernel. */
class DecomposedPipeline
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>>
{};

TEST_P(DecomposedPipeline, ComposesToRowSoftmax)
{
    const auto [cols, t] = GetParam();
    const int64_t rows = 24;
    Rng rng(uint64_t(cols * 131 + t));
    const Tensor<Half> in = makeAttentionScores(rng, rows, cols);

    SoftmaxShape base_desc;
    base_desc.rows = rows;
    base_desc.cols = cols;
    Tensor<Half> baseline(in.shape());
    rowSoftmaxRun(execCtx(), base_desc, in, baseline);

    SoftmaxShape sub;
    sub.rows = rows;
    sub.cols = cols;
    sub.subVector = t;
    const Shape md({rows, sub.numSubVectors()});
    Tensor<Half> x_prime(in.shape());
    Tensor<float> local_max(md), local_sum(md), recon(md);
    lsRun(execCtx(), sub, in, x_prime, local_max, local_sum);
    irRun(execCtx(), sub, local_max, local_sum, recon);
    Tensor<Half> recomposed(in.shape());
    gsRun(execCtx(), sub, x_prime, recon, recomposed);

    // Both routes round through fp16 once more than the reference;
    // they must agree to fp16 precision on values in [0, 1].
    EXPECT_LT(maxAbsDiff(toFloat(recomposed), toFloat(baseline)), 2e-3)
        << "cols=" << cols << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposedPipeline,
    ::testing::Combine(::testing::Values(32, 64, 100, 256),
                       ::testing::Values(8, 16, 32, 64)));

TEST(DecomposedPipelineEdge, MaskedSubVector)
{
    const int64_t rows = 4, cols = 32, t = 8;
    Rng rng(9);
    Tensor<Half> in = makeAttentionScores(rng, rows, cols);
    // Mask the second sub-vector of row 1 entirely.
    for (int64_t j = 8; j < 16; ++j)
        in.at(1, j) = Half::fromBits(0xfc00);

    SoftmaxShape sub;
    sub.rows = rows;
    sub.cols = cols;
    sub.subVector = t;
    const Shape md({rows, 4});
    Tensor<Half> x_prime(in.shape());
    Tensor<float> lmax(md), lsum(md), recon(md);
    lsRun(execCtx(), sub, in, x_prime, lmax, lsum);
    EXPECT_EQ(lsum.at(1, 1), 0.0f);
    irRun(execCtx(), sub, lmax, lsum, recon);
    EXPECT_EQ(recon.at(1, 1), 0.0f);
    Tensor<Half> out(in.shape());
    gsRun(execCtx(), sub, x_prime, recon, out);

    SoftmaxShape base_desc;
    base_desc.rows = rows;
    base_desc.cols = cols;
    Tensor<Half> baseline(in.shape());
    rowSoftmaxRun(execCtx(), base_desc, in, baseline);
    EXPECT_LT(maxAbsDiff(toFloat(out), toFloat(baseline)), 2e-3);
}

TEST(DecomposedDesc, SubVectorCount)
{
    SoftmaxShape sub;
    sub.rows = 4;
    sub.cols = 100;
    sub.subVector = 32;
    EXPECT_EQ(sub.numSubVectors(), 4); // ceil(100/32)
}

// ---------- profiles ----------

TEST(RowSoftmaxProfile, OneBlockPerRowWithRowStaging)
{
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape desc;
    desc.batch = 16;
    desc.rows = 4096;
    desc.cols = 4096;
    const KernelProfile prof = rowSoftmaxProfile(spec, desc);
    EXPECT_EQ(prof.geom.numBlocks, 16 * 4096);
    EXPECT_EQ(prof.geom.block.smemBytes,
              uint64_t(4096 * calib::kRowSoftmaxStagingBytesPerElem));
    const uint64_t matrix = uint64_t(16) * 4096 * 4096 * 2;
    EXPECT_EQ(prof.dramReadBytes, matrix);
    EXPECT_EQ(prof.dramWriteBytes, matrix);
    EXPECT_DOUBLE_EQ(prof.serializationFactor,
                     rowSoftmaxSerialization(4096));
    EXPECT_EQ(prof.category, KernelCategory::Softmax);
}

TEST(LsProfile, TiledGridAndIntermediateWrites)
{
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape desc;
    desc.batch = 2;
    desc.rows = 512;
    desc.cols = 512;
    desc.subVector = 64;
    const KernelProfile prof = lsProfile(spec, desc);
    EXPECT_EQ(prof.geom.numBlocks, 2 * 8 * 8);
    const uint64_t matrix = uint64_t(2) * 512 * 512 * 2;
    EXPECT_EQ(prof.dramReadBytes, matrix);
    EXPECT_EQ(prof.dramWriteBytes,
              matrix + uint64_t(2) * 512 * 8 * 2 * 4);
    EXPECT_DOUBLE_EQ(prof.serializationFactor, 1.0);
    EXPECT_EQ(prof.category, KernelCategory::SoftmaxLs);
}

TEST(IrProfile, TinyTraffic)
{
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape desc;
    desc.batch = 2;
    desc.rows = 512;
    desc.cols = 512;
    desc.subVector = 64;
    const KernelProfile prof = irProfile(spec, desc);
    const uint64_t md_count = 2 * 512 * 8;
    EXPECT_EQ(prof.dramReadBytes, md_count * 8);
    EXPECT_EQ(prof.dramWriteBytes, md_count * 4);
    EXPECT_EQ(prof.category, KernelCategory::SoftmaxIr);
    // IR traffic is ~1/T of one matrix sweep: negligible by design.
    EXPECT_LT(prof.dramBytes(), uint64_t(2) * 512 * 512 * 2 / 8);
}

TEST(GsProfile, StreamingElementwise)
{
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape desc;
    desc.batch = 1;
    desc.rows = 1024;
    desc.cols = 1024;
    desc.subVector = 64;
    const KernelProfile prof = gsProfile(spec, desc);
    const uint64_t matrix = uint64_t(1024) * 1024 * 2;
    EXPECT_EQ(prof.dramWriteBytes, matrix);
    EXPECT_EQ(prof.dramReadBytes, matrix + 1024 * 16 * 4);
    EXPECT_EQ(prof.category, KernelCategory::SoftmaxGs);
    EXPECT_DOUBLE_EQ(prof.laneUtilization, 1.0);
}

TEST(SoftmaxProfiles, DecomposedMovesTwiceTheMatrixTraffic)
{
    // The SD configuration's defining cost (paper Section 5.1): LS+GS
    // together sweep the attention matrix twice as often as the
    // baseline kernel.
    const GpuSpec spec = GpuSpec::a100();
    SoftmaxShape base;
    base.batch = 16;
    base.rows = base.cols = 4096;
    SoftmaxShape sub;
    sub.batch = 16;
    sub.rows = sub.cols = 4096;
    sub.subVector = 64;
    const uint64_t base_bytes = rowSoftmaxProfile(spec, base).dramBytes();
    const uint64_t sd_bytes = lsProfile(spec, sub).dramBytes() +
                              irProfile(spec, sub).dramBytes() +
                              gsProfile(spec, sub).dramBytes();
    EXPECT_GT(sd_bytes, base_bytes * 2.0);
    EXPECT_LT(sd_bytes, base_bytes * 2.1);
}

} // namespace
} // namespace softrec
