/**
 * @file
 * Tests of the autoregressive generation study, plus the KV-cache
 * equivalence suite: incremental decode through the functional KV
 * path must be bit-identical to recomputing the full prefix at every
 * step, across thread counts and SIMD backends.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "model/decode.hpp"
#include "model/functional_layer.hpp"
#include "serve/kv_cache.hpp"

namespace softrec {
namespace {

constexpr int64_t kDm = 32;
constexpr int64_t kHeads = 2;
constexpr int64_t kDff = 48;
constexpr int64_t kLayers = 2;
constexpr int64_t kPrompt = 7;
constexpr int64_t kSteps = 5;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens)
{
    Tensor<Half> prompt(Shape({tokens, kDm}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

/** One decode step with a call-lifetime workspace (test-only). */
Tensor<Half>
decodeStep(const ExecContext &ctx, const DecoderStack &stack,
           const Tensor<Half> &inputs,
           const std::vector<KvCache *> &caches)
{
    DecodeStepWorkspace ws;
    Tensor<Half> outputs;
    runDecodeStepInto(ctx, stack, inputs, caches, ws, outputs);
    return outputs;
}

/** Full forward pass of the stack over `seq` (no cache). */
Tensor<Half>
fullForward(const ExecContext &ctx, const DecoderStack &stack,
            const Tensor<Half> &seq)
{
    Tensor<Half> x = seq;
    for (const EncoderLayerWeights &layer : stack.layers)
        x = runEncoderLayer(ctx, stack.config, layer, x);
    return x;
}

/** Append `row` of a [*, dm] tensor to `seq`. */
Tensor<Half>
appendRow(const Tensor<Half> &seq, const Tensor<Half> &rows,
          int64_t row)
{
    const int64_t n = seq.shape().dim(0);
    Tensor<Half> out(Shape({n + 1, seq.shape().dim(1)}));
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < seq.shape().dim(1); ++j)
            out.at(i, j) = seq.at(i, j);
    for (int64_t j = 0; j < seq.shape().dim(1); ++j)
        out.at(n, j) = rows.at(row, j);
    return out;
}

void
expectRowBitsEqual(const Tensor<Half> &got, int64_t got_row,
                   const Tensor<Half> &want, int64_t want_row,
                   const char *what, int64_t step)
{
    for (int64_t j = 0; j < got.shape().dim(1); ++j)
        ASSERT_EQ(got.at(got_row, j).bits(),
                  want.at(want_row, j).bits())
            << what << ": step " << step << " column " << j;
}

/**
 * Drive `kSteps` incremental decode steps and assert each output row
 * is bit-identical to a full-prefix recompute of the same sequence.
 */
void
checkIncrementalMatchesRecompute(const ExecContext &ctx)
{
    Rng rng(17);
    const DecoderStack stack =
        DecoderStack::random(kDm, kHeads, kDff, kLayers, rng);
    const Tensor<Half> prompt = randomPrompt(rng, kPrompt);

    KvSlab slab(/*block_tokens=*/4, kDm);
    KvCache cache(slab, kLayers);
    const Tensor<Half> prefill_out =
        runPrefill(ctx, stack, prompt, cache);
    EXPECT_EQ(cache.context(), kPrompt);

    // The prefill itself must match a plain stack forward bit for bit.
    const Tensor<Half> plain = fullForward(ctx, stack, prompt);
    for (int64_t i = 0; i < kPrompt; ++i)
        expectRowBitsEqual(prefill_out, i, plain, i, "prefill", i);

    Tensor<Half> seq = prompt;
    Tensor<Half> input(Shape({1, kDm}));
    for (int64_t j = 0; j < kDm; ++j)
        input.at(0, j) = prefill_out.at(kPrompt - 1, j);

    for (int64_t t = 0; t < kSteps; ++t) {
        seq = appendRow(seq, input, 0);
        const Tensor<Half> decode_out =
            decodeStep(ctx, stack, input, {&cache});
        EXPECT_EQ(cache.context(), kPrompt + t + 1);

        const Tensor<Half> full = fullForward(ctx, stack, seq);
        expectRowBitsEqual(decode_out, 0, full,
                           seq.shape().dim(0) - 1, "decode", t);
        for (int64_t j = 0; j < kDm; ++j)
            input.at(0, j) = decode_out.at(0, j);
    }
}

TEST(KvEquivalence, SerialContext)
{
    checkIncrementalMatchesRecompute(ExecContext());
}

TEST(KvEquivalence, ThreadPool4)
{
    ThreadPool pool(4);
    ExecContext ctx;
    ctx.pool = &pool;
    checkIncrementalMatchesRecompute(ctx);
}

TEST(KvEquivalence, ScalarSimdBackend)
{
    const SimdBackend prev = setSimdBackend(SimdBackend::Scalar);
    checkIncrementalMatchesRecompute(ExecContext());
    setSimdBackend(prev);
}

TEST(KvEquivalence, DetectedSimdBackendThreaded)
{
    const SimdBackend prev =
        setSimdBackend(detectedSimdBackend());
    ThreadPool pool(4);
    ExecContext ctx;
    ctx.pool = &pool;
    checkIncrementalMatchesRecompute(ctx);
    setSimdBackend(prev);
}

TEST(KvEquivalence, SameBitsAcrossThreadCountsAndBackends)
{
    // Decode outputs must not depend on execution resources at all:
    // run the same generation under four (threads, backend) pairs and
    // require identical bits everywhere.
    Rng rng(23);
    const DecoderStack stack =
        DecoderStack::random(kDm, kHeads, kDff, kLayers, rng);
    const Tensor<Half> prompt = randomPrompt(rng, kPrompt);

    auto generate = [&](int threads, SimdBackend backend) {
        const SimdBackend prev = setSimdBackend(backend);
        std::vector<uint16_t> bits;
        {
            ThreadPool pool(threads);
            ExecContext ctx;
            if (threads > 1)
                ctx.pool = &pool;
            KvSlab slab(/*block_tokens=*/4, kDm);
            KvCache cache(slab, kLayers);
            const Tensor<Half> out =
                runPrefill(ctx, stack, prompt, cache);
            Tensor<Half> input(Shape({1, kDm}));
            for (int64_t j = 0; j < kDm; ++j)
                input.at(0, j) = out.at(kPrompt - 1, j);
            for (int64_t t = 0; t < kSteps; ++t) {
                input = decodeStep(ctx, stack, input, {&cache});
                for (int64_t j = 0; j < kDm; ++j)
                    bits.push_back(input.at(0, j).bits());
            }
        }
        setSimdBackend(prev);
        return bits;
    };

    const auto reference = generate(1, SimdBackend::Scalar);
    EXPECT_EQ(generate(4, SimdBackend::Scalar), reference);
    EXPECT_EQ(generate(1, detectedSimdBackend()), reference);
    EXPECT_EQ(generate(4, detectedSimdBackend()), reference);
}

TEST(KvEquivalence, PrefillCacheHoldsTheProjectedRows)
{
    Rng rng(29);
    const DecoderStack stack =
        DecoderStack::random(kDm, kHeads, kDff, kLayers, rng);
    const Tensor<Half> prompt = randomPrompt(rng, kPrompt);

    KvSlab slab(/*block_tokens=*/3, kDm);
    KvCache cache(slab, kLayers);
    runPrefill(ExecContext(), stack, prompt, cache);

    // Layer 0's cached K rows must equal the fc.k projection of the
    // prompt (the cache stores projections, not raw embeddings).
    const Tensor<Half> k = projectRows(
        ExecContext(), "fc.k", prompt, stack.layers[0].wk,
        stack.layers[0].bk);
    const KvRowsView view = cache.kView(0);
    ASSERT_EQ(view.rows, kPrompt);
    for (int64_t i = 0; i < kPrompt; ++i)
        for (int64_t j = 0; j < kDm; ++j)
            EXPECT_EQ(view.row(i)[j].bits(), k.at(i, j).bits())
                << "row " << i << " column " << j;
}

TEST(DecodeStep, StructureAndWeightBoundGemvs)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    const auto step = buildDecodeStep(spec, model, 1, 4096);
    // 6 GEMVs + attention + 2 residuals + 2 layernorms.
    EXPECT_EQ(step.size(), 11u);
    for (const auto &prof : step) {
        if (prof.name == "dec.fc.q" || prof.name == "dec.fc.out" ||
            prof.name == "dec.ff.1" || prof.name == "dec.ff.2") {
            // Weight streaming dominates a single-token GEMV.
            EXPECT_GE(prof.dramReadBytes,
                      uint64_t(model.dModel * model.dModel) * 2)
                << prof.name;
        }
    }
}

TEST(DecodeStep, AttentionTrafficTracksContext)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    auto cache_read = [&](int64_t context) {
        for (const auto &prof :
             buildDecodeStep(spec, model, 1, context))
            if (prof.name == "dec.attn")
                return prof.dramReadBytes;
        return uint64_t(0);
    };
    // KV cache grows linearly with context.
    EXPECT_NEAR(double(cache_read(4096)) / double(cache_read(1024)),
                4.0, 0.1);
}

TEST(Generation, PrefillDominatedByLongPrompts)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    DecodeRun run;
    run.promptLen = 4096;
    run.generateTokens = 16;
    const DecodeResult result = runGeneration(spec, model, run);
    EXPECT_GT(result.prefillSeconds, 0.0);
    EXPECT_GT(result.decodeSeconds, 0.0);
    EXPECT_GT(result.prefillSeconds, result.decodeSeconds);
    EXPECT_GT(result.secondsPerToken(16), 0.0);
    EXPECT_DOUBLE_EQ(result.totalSeconds(),
                     result.prefillSeconds + result.decodeSeconds);
}

TEST(Generation, RecompositionAcceleratesOnlyThePrefill)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    DecodeRun run;
    run.promptLen = 4096;
    run.generateTokens = 8;
    run.prefillStrategy = Strategy::Baseline;
    const DecodeResult base = runGeneration(spec, model, run);
    run.prefillStrategy = Strategy::Fused;
    const DecodeResult sdf = runGeneration(spec, model, run);
    EXPECT_LT(sdf.prefillSeconds, base.prefillSeconds);
    // Decode is strategy-independent (1 x C attention rows).
    EXPECT_DOUBLE_EQ(sdf.decodeSeconds, base.decodeSeconds);
}

TEST(Generation, NonCausalModelRejected)
{
    DecodeRun run;
    EXPECT_THROW(runGeneration(GpuSpec::a100(),
                               ModelConfig::bertLarge(), run),
                 std::logic_error);
}

TEST(Generation, PerTokenLatencyGrowsWithContext)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    Gpu gpu(spec);
    auto step_seconds = [&](int64_t context) {
        gpu.reset();
        for (const auto &prof :
             buildDecodeStep(spec, model, 1, context))
            gpu.launch(prof);
        return gpu.totalSeconds();
    };
    EXPECT_GT(step_seconds(8192), step_seconds(1024));
}

} // namespace
} // namespace softrec
