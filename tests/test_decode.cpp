/**
 * @file
 * Tests of the autoregressive generation study.
 */

#include <gtest/gtest.h>

#include "model/decode.hpp"

namespace softrec {
namespace {

TEST(DecodeStep, StructureAndWeightBoundGemvs)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    const auto step = buildDecodeStep(spec, model, 1, 4096);
    // 6 GEMVs + attention + 2 residuals + 2 layernorms.
    EXPECT_EQ(step.size(), 11u);
    for (const auto &prof : step) {
        if (prof.name == "dec.fc.q" || prof.name == "dec.fc.out" ||
            prof.name == "dec.ff.1" || prof.name == "dec.ff.2") {
            // Weight streaming dominates a single-token GEMV.
            EXPECT_GE(prof.dramReadBytes,
                      uint64_t(model.dModel * model.dModel) * 2)
                << prof.name;
        }
    }
}

TEST(DecodeStep, AttentionTrafficTracksContext)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    auto cache_read = [&](int64_t context) {
        for (const auto &prof :
             buildDecodeStep(spec, model, 1, context))
            if (prof.name == "dec.attn")
                return prof.dramReadBytes;
        return uint64_t(0);
    };
    // KV cache grows linearly with context.
    EXPECT_NEAR(double(cache_read(4096)) / double(cache_read(1024)),
                4.0, 0.1);
}

TEST(Generation, PrefillDominatedByLongPrompts)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    DecodeRun run;
    run.promptLen = 4096;
    run.generateTokens = 16;
    const DecodeResult result = runGeneration(spec, model, run);
    EXPECT_GT(result.prefillSeconds, 0.0);
    EXPECT_GT(result.decodeSeconds, 0.0);
    EXPECT_GT(result.prefillSeconds, result.decodeSeconds);
    EXPECT_GT(result.secondsPerToken(16), 0.0);
    EXPECT_DOUBLE_EQ(result.totalSeconds(),
                     result.prefillSeconds + result.decodeSeconds);
}

TEST(Generation, RecompositionAcceleratesOnlyThePrefill)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    DecodeRun run;
    run.promptLen = 4096;
    run.generateTokens = 8;
    run.prefillStrategy = Strategy::Baseline;
    const DecodeResult base = runGeneration(spec, model, run);
    run.prefillStrategy = Strategy::Fused;
    const DecodeResult sdf = runGeneration(spec, model, run);
    EXPECT_LT(sdf.prefillSeconds, base.prefillSeconds);
    // Decode is strategy-independent (1 x C attention rows).
    EXPECT_DOUBLE_EQ(sdf.decodeSeconds, base.decodeSeconds);
}

TEST(Generation, NonCausalModelRejected)
{
    DecodeRun run;
    EXPECT_THROW(runGeneration(GpuSpec::a100(),
                               ModelConfig::bertLarge(), run),
                 std::logic_error);
}

TEST(Generation, PerTokenLatencyGrowsWithContext)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();
    Gpu gpu(spec);
    auto step_seconds = [&](int64_t context) {
        gpu.reset();
        for (const auto &prof :
             buildDecodeStep(spec, model, 1, context))
            gpu.launch(prof);
        return gpu.totalSeconds();
    };
    EXPECT_GT(step_seconds(8192), step_seconds(1024));
}

} // namespace
} // namespace softrec
