/**
 * @file
 * Tests of the occupancy calculator against hand-computed cases.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/occupancy.hpp"

namespace softrec {
namespace {

TEST(Occupancy, ThreadLimited)
{
    const GpuSpec spec = GpuSpec::a100(); // 2048 threads/SM
    BlockResources res;
    res.threads = 256;
    res.smemBytes = 0;
    res.regsPerThread = 32; // 8K regs/TB; 65536/8192 = 8 -> ties threads
    const Occupancy occ = computeOccupancy(spec, res, 1 << 20);
    EXPECT_EQ(occ.blocksPerSm, 8);
    EXPECT_EQ(occ.warpsPerSm, 64);
    EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
    EXPECT_EQ(occ.limit, Occupancy::Limit::Threads);
}

TEST(Occupancy, SharedMemoryLimited)
{
    const GpuSpec spec = GpuSpec::a100(); // 164 KiB smem/SM
    BlockResources res;
    res.threads = 128;
    res.smemBytes = 16 * 1024; // 164/16 = 10 TBs
    res.regsPerThread = 32;
    const Occupancy occ = computeOccupancy(spec, res, 1 << 20);
    EXPECT_EQ(occ.blocksPerSm, 10);
    EXPECT_EQ(occ.warpsPerSm, 40);
    EXPECT_EQ(occ.limit, Occupancy::Limit::SharedMemory);
}

TEST(Occupancy, RegisterLimited)
{
    const GpuSpec spec = GpuSpec::a100(); // 65536 regs/SM
    BlockResources res;
    res.threads = 256;
    res.smemBytes = 1024;
    res.regsPerThread = 128; // 32768/TB -> 2 TBs
    const Occupancy occ = computeOccupancy(spec, res, 1 << 20);
    EXPECT_EQ(occ.blocksPerSm, 2);
    EXPECT_EQ(occ.warpsPerSm, 16);
    EXPECT_EQ(occ.limit, Occupancy::Limit::Registers);
}

TEST(Occupancy, BlockCountLimited)
{
    GpuSpec spec = GpuSpec::a100();
    spec.maxBlocksPerSm = 4;
    BlockResources res;
    res.threads = 32;
    res.smemBytes = 0;
    res.regsPerThread = 16;
    const Occupancy occ = computeOccupancy(spec, res, 1 << 20);
    EXPECT_EQ(occ.blocksPerSm, 4);
    EXPECT_EQ(occ.limit, Occupancy::Limit::Blocks);
}

TEST(Occupancy, GridLimited)
{
    const GpuSpec spec = GpuSpec::a100(); // 108 SMs
    BlockResources res;
    res.threads = 128;
    res.smemBytes = 0;
    res.regsPerThread = 32;
    // 108 blocks over 108 SMs: one per SM.
    const Occupancy occ = computeOccupancy(spec, res, 108);
    EXPECT_EQ(occ.blocksPerSm, 1);
    EXPECT_EQ(occ.limit, Occupancy::Limit::Grid);
}

TEST(Occupancy, WarpsCappedAtHardwareMax)
{
    const GpuSpec spec = GpuSpec::t4(); // 1024 threads/SM = 32 warps
    BlockResources res;
    res.threads = 1024;
    res.smemBytes = 0;
    res.regsPerThread = 16;
    const Occupancy occ = computeOccupancy(spec, res, 1000);
    EXPECT_LE(occ.warpsPerSm, spec.maxWarpsPerSm());
    EXPECT_LE(occ.fraction, 1.0);
}

TEST(Occupancy, OversizedBlockIsFatal)
{
    const GpuSpec spec = GpuSpec::a100();
    BlockResources res;
    res.threads = 2048; // exceeds maxThreadsPerBlock
    EXPECT_THROW(computeOccupancy(spec, res, 1), std::logic_error);
}

TEST(Occupancy, UnschedulableBlockIsFatal)
{
    const GpuSpec spec = GpuSpec::a100();
    BlockResources res;
    res.threads = 128;
    res.smemBytes = 1024 * 1024; // larger than smem per SM
    EXPECT_THROW(computeOccupancy(spec, res, 1), std::runtime_error);
}

TEST(Occupancy, EmptyGridIsFatal)
{
    const GpuSpec spec = GpuSpec::a100();
    EXPECT_THROW(computeOccupancy(spec, BlockResources{}, 0),
                 std::logic_error);
}

TEST(Occupancy, MonotoneInResourceUsage)
{
    const GpuSpec spec = GpuSpec::rtx3090();
    BlockResources light;
    light.threads = 128;
    light.smemBytes = 4096;
    light.regsPerThread = 32;
    for (uint64_t smem = 4096; smem <= 65536; smem *= 2) {
        BlockResources heavy = light;
        heavy.smemBytes = smem;
        const auto occ_l = computeOccupancy(spec, light, 1 << 20);
        const auto occ_h = computeOccupancy(spec, heavy, 1 << 20);
        EXPECT_LE(occ_h.blocksPerSm, occ_l.blocksPerSm);
    }
}

TEST(Occupancy, LimitNamesAreStable)
{
    EXPECT_STREQ(occupancyLimitName(Occupancy::Limit::Threads),
                 "threads");
    EXPECT_STREQ(occupancyLimitName(Occupancy::Limit::SharedMemory),
                 "shared-memory");
    EXPECT_STREQ(occupancyLimitName(Occupancy::Limit::Registers),
                 "registers");
    EXPECT_STREQ(occupancyLimitName(Occupancy::Limit::Blocks), "blocks");
    EXPECT_STREQ(occupancyLimitName(Occupancy::Limit::Grid), "grid");
}

} // namespace
} // namespace softrec
