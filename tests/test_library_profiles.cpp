/**
 * @file
 * Tests of the Fig. 7 library baselines.
 */

#include <gtest/gtest.h>

#include "model/library_profiles.hpp"

namespace softrec {
namespace {

TEST(Libraries, SupportMatrix)
{
    const ModelConfig bert = ModelConfig::bertLarge();
    const ModelConfig bigbird = ModelConfig::bigBirdLarge();
    for (Library lib : allLibraries())
        EXPECT_TRUE(librarySupports(lib, bert));
    EXPECT_TRUE(librarySupports(Library::DeepSpeed, bigbird));
    EXPECT_TRUE(librarySupports(Library::HuggingFace, bigbird));
    EXPECT_TRUE(librarySupports(Library::Ours, bigbird));
    EXPECT_FALSE(librarySupports(Library::TensorRT, bigbird));
    EXPECT_FALSE(librarySupports(Library::FasterTransformer, bigbird));
}

TEST(Libraries, ShortNames)
{
    EXPECT_STREQ(libraryShortName(Library::HuggingFace), "HG");
    EXPECT_STREQ(libraryShortName(Library::FasterTransformer), "FT");
    EXPECT_STREQ(libraryShortName(Library::TensorRT), "TRT");
    EXPECT_STREQ(libraryShortName(Library::DeepSpeed), "DS");
    EXPECT_STREQ(libraryShortName(Library::Ours), "Ours");
    EXPECT_EQ(allLibraries().size(), 5u);
}

TEST(Libraries, UnsupportedCombinationPanics)
{
    RunConfig run;
    run.seqLen = 1024;
    EXPECT_THROW(runLibraryInference(GpuSpec::a100(),
                                     ModelConfig::bigBirdLarge(), run,
                                     Library::TensorRT),
                 std::logic_error);
}

TEST(Libraries, DenseOrderingMatchesFig7)
{
    // Fig. 7 (BERT-large): HG clearly slowest; FT/DS a bit behind
    // TRT; our baseline within ~1% of TRT.
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig bert = ModelConfig::bertLarge();
    RunConfig run;
    run.seqLen = 4096;

    std::map<Library, double> seconds;
    for (Library lib : allLibraries())
        seconds[lib] =
            runLibraryInference(spec, bert, run, lib).seconds;

    EXPECT_GT(seconds[Library::HuggingFace],
              seconds[Library::TensorRT] * 1.2);
    EXPECT_GE(seconds[Library::FasterTransformer],
              seconds[Library::TensorRT] * 0.999);
    EXPECT_GE(seconds[Library::DeepSpeed],
              seconds[Library::TensorRT] * 0.999);
    EXPECT_NEAR(seconds[Library::Ours] / seconds[Library::TensorRT],
                1.0, 0.01);
}

TEST(Libraries, SparseOrderingMatchesFig7)
{
    // Fig. 7 (BigBird-large): DS fastest, ours within a few percent,
    // HuggingFace's gather-based fallback far behind.
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig bigbird = ModelConfig::bigBirdLarge();
    RunConfig run;
    run.seqLen = 4096;

    const double ds =
        runLibraryInference(spec, bigbird, run, Library::DeepSpeed)
            .seconds;
    const double ours =
        runLibraryInference(spec, bigbird, run, Library::Ours).seconds;
    const double hg =
        runLibraryInference(spec, bigbird, run, Library::HuggingFace)
            .seconds;
    EXPECT_LE(ds, ours);
    EXPECT_LT(ours / ds, 1.05); // "less than 8%" in the paper
    EXPECT_GT(hg, ds * 1.3);
}

TEST(Libraries, LibraryRunsAlwaysUseBaselineStrategy)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    run.strategy = Strategy::Fused; // must be overridden
    const auto result = runLibraryInference(
        spec, ModelConfig::bertLarge(), run, Library::TensorRT);
    EXPECT_EQ(result.strategy, Strategy::Baseline);
    EXPECT_GT(result.secondsIn(KernelCategory::Softmax), 0.0);
}

TEST(Libraries, PolicyShapes)
{
    const ModelConfig bert = ModelConfig::bertLarge();
    const auto hg = libraryFusionPolicy(Library::HuggingFace, bert);
    EXPECT_FALSE(hg.biasFused);
    EXPECT_FALSE(hg.scaleMaskFused);
    EXPECT_FALSE(hg.geluFused);
    EXPECT_GT(hg.extraReshapes, 0);
    EXPECT_LT(hg.softmaxQuality, 1.0);

    const auto trt = libraryFusionPolicy(Library::TensorRT, bert);
    EXPECT_TRUE(trt.biasFused);
    EXPECT_DOUBLE_EQ(trt.softmaxQuality, 1.0);

    const auto ds_sparse = libraryFusionPolicy(
        Library::DeepSpeed, ModelConfig::bigBirdLarge());
    EXPECT_GT(ds_sparse.sparseMatmulQuality, 1.0);
}

} // namespace
} // namespace softrec
