/**
 * @file
 * Tests of the block-sparse kernels: SDD/DSD GEMMs and the sparse
 * softmax pipeline, against dense references restricted to the layout.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "kernels/bsr_gemm.hpp"
#include "kernels/bsr_softmax.hpp"
#include "sim/cost_model.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/corpus.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

constexpr int64_t kL = 128;
constexpr int64_t kBs = 16;
constexpr int64_t kDh = 8;

BsrLayout
testLayout()
{
    BigBirdParams params;
    params.blockSize = kBs;
    params.windowBlocks = 1;
    params.globalBlocks = 1;
    params.randomBlocks = 2;
    params.seed = 99;
    return bigBirdPattern(kL, params);
}

struct Inputs
{
    Tensor<Half> q{Shape({kL, kDh})};
    Tensor<Half> k{Shape({kL, kDh})};
    Tensor<Half> v{Shape({kL, kDh})};
};

Inputs
makeInputs(uint64_t seed)
{
    Inputs in;
    Rng rng(seed);
    fillNormal(in.q, rng, 0.0, 0.7);
    fillNormal(in.k, rng, 0.0, 0.7);
    fillNormal(in.v, rng, 0.0, 0.7);
    return in;
}

TEST(BsrSdd, MatchesDenseGemmOnNonZeroBlocks)
{
    const BsrLayout layout = testLayout();
    const Inputs in = makeInputs(1);
    BsrSddDesc desc;
    desc.layout = &layout;
    desc.dHead = kDh;
    desc.scale = 0.35;
    BsrMatrix s(layout);
    bsrSddRun(execCtx(), desc, in.q, in.k, s);

    const Tensor<Half> dense = s.toDense();
    for (int64_t i = 0; i < kL; ++i) {
        for (int64_t j = 0; j < kL; ++j) {
            if (!layout.hasBlock(i / kBs, j / kBs)) {
                EXPECT_TRUE(dense.at(i, j).isZero());
                continue;
            }
            float expect = 0.0f;
            for (int64_t d = 0; d < kDh; ++d)
                expect += float(in.q.at(i, d)) * float(in.k.at(j, d));
            expect *= 0.35f;
            EXPECT_NEAR(float(dense.at(i, j)), expect,
                        0.01f + 0.005f * std::abs(expect));
        }
    }
}

TEST(BsrDsd, MatchesDenseMatmulWithStructuralZeros)
{
    const BsrLayout layout = testLayout();
    const Inputs in = makeInputs(2);
    // Build a sparse P from random values.
    Rng rng(3);
    Tensor<Half> p_dense(Shape({kL, kL}));
    fillNormal(p_dense, rng, 0.0, 0.3);
    const BsrMatrix p = BsrMatrix::fromDense(layout, p_dense);

    BsrDsdDesc desc;
    desc.layout = &layout;
    desc.dHead = kDh;
    Tensor<Half> o(Shape({kL, kDh}));
    bsrDsdRun(execCtx(), desc, p, in.v, o);

    const Tensor<Half> p_masked = p.toDense();
    for (int64_t i = 0; i < kL; ++i) {
        for (int64_t d = 0; d < kDh; ++d) {
            float expect = 0.0f;
            for (int64_t j = 0; j < kL; ++j)
                expect +=
                    float(p_masked.at(i, j)) * float(in.v.at(j, d));
            EXPECT_NEAR(float(o.at(i, d)), expect,
                        0.02f + 0.01f * std::abs(expect));
        }
    }
}

TEST(BsrSoftmax, MatchesPerRowReferenceOverStoredElements)
{
    const BsrLayout layout = testLayout();
    Rng rng(4);
    Tensor<Half> dense = makeAttentionScores(rng, kL, kL);
    const BsrMatrix in = BsrMatrix::fromDense(layout, dense);
    BsrMatrix out(layout);
    BsrSoftmaxDesc desc;
    desc.layout = &layout;
    bsrRowSoftmaxRun(execCtx(), desc, in, out);

    const Tensor<Half> in_dense = in.toDense();
    const Tensor<Half> out_dense = out.toDense();
    for (int64_t i = 0; i < kL; ++i) {
        // Reference over the row's stored positions only.
        double m = -1e300;
        for (int64_t j = 0; j < kL; ++j)
            if (layout.hasBlock(i / kBs, j / kBs))
                m = std::max(m, double(float(in_dense.at(i, j))));
        double d_sum = 0.0;
        for (int64_t j = 0; j < kL; ++j)
            if (layout.hasBlock(i / kBs, j / kBs))
                d_sum += std::exp(double(float(in_dense.at(i, j))) - m);
        float sum = 0.0f;
        for (int64_t j = 0; j < kL; ++j) {
            if (!layout.hasBlock(i / kBs, j / kBs))
                continue;
            const double expect =
                std::exp(double(float(in_dense.at(i, j))) - m) / d_sum;
            EXPECT_NEAR(float(out_dense.at(i, j)), expect, 2e-3);
            sum += float(out_dense.at(i, j));
        }
        EXPECT_NEAR(sum, 1.0f, 0.03f);
    }
}

TEST(BsrDecomposed, ComposesToBaselineSparseSoftmax)
{
    const BsrLayout layout = testLayout();
    Rng rng(5);
    const BsrMatrix in =
        BsrMatrix::fromDense(layout, makeAttentionScores(rng, kL, kL));
    BsrSoftmaxDesc desc;
    desc.layout = &layout;

    BsrMatrix baseline(layout);
    bsrRowSoftmaxRun(execCtx(), desc, in, baseline);

    BsrMatrix x_prime(layout);
    std::vector<float> lmax, lsum, recon;
    bsrLsRun(execCtx(), desc, in, x_prime, lmax, lsum);
    bsrIrRun(execCtx(), desc, lmax, lsum, recon);
    BsrMatrix recomposed(layout);
    bsrGsRun(execCtx(), desc, x_prime, recon, recomposed);

    EXPECT_LT(maxAbsDiff(toFloat(recomposed.toDense()),
                         toFloat(baseline.toDense())),
              2e-3);
}

TEST(BsrFusedSdd, MatchesUnfusedPipeline)
{
    const BsrLayout layout = testLayout();
    const Inputs in = makeInputs(6);
    BsrSddDesc plain;
    plain.layout = &layout;
    plain.dHead = kDh;
    plain.scale = 0.35;
    BsrMatrix s(layout);
    bsrSddRun(execCtx(), plain, in.q, in.k, s);
    BsrSoftmaxDesc sub;
    sub.layout = &layout;
    BsrMatrix x_ref(layout);
    std::vector<float> m_ref, d_ref;
    bsrLsRun(execCtx(), sub, s, x_ref, m_ref, d_ref);

    BsrSddDesc fused = plain;
    fused.fuseLocalSoftmax = true;
    BsrMatrix x_fused(layout);
    std::vector<float> m_fused, d_fused;
    bsrSddRun(execCtx(), fused, in.q, in.k, x_fused, &m_fused, &d_fused);

    EXPECT_LT(maxAbsDiff(toFloat(x_fused.toDense()),
                         toFloat(x_ref.toDense())),
              5e-3);
    for (size_t i = 0; i < m_ref.size(); ++i) {
        EXPECT_NEAR(m_fused[i], m_ref[i], 5e-3);
        EXPECT_NEAR(d_fused[i], d_ref[i],
                    5e-3 + 0.02 * std::abs(d_ref[i]));
    }
}

TEST(BsrFusedDsd, MatchesGsThenDsd)
{
    const BsrLayout layout = testLayout();
    const Inputs in = makeInputs(7);
    Rng rng(8);
    const BsrMatrix x_prime =
        BsrMatrix::fromDense(layout, makeAttentionScores(rng, kL, kL));
    std::vector<float> recon(size_t(layout.nnzBlocks() * kBs));
    for (float &r : recon)
        r = float(rng.uniform(0.0, 0.1));

    // Unfused: GS then plain DSD.
    BsrSoftmaxDesc sub;
    sub.layout = &layout;
    BsrMatrix scaled(layout);
    bsrGsRun(execCtx(), sub, x_prime, recon, scaled);
    BsrDsdDesc plain;
    plain.layout = &layout;
    plain.dHead = kDh;
    Tensor<Half> o_ref(Shape({kL, kDh}));
    bsrDsdRun(execCtx(), plain, scaled, in.v, o_ref);

    // Fused GS prologue.
    BsrDsdDesc fused = plain;
    fused.fuseGlobalScale = true;
    Tensor<Half> o_fused(Shape({kL, kDh}));
    bsrDsdRun(execCtx(), fused, x_prime, in.v, o_fused, &recon);

    EXPECT_LT(maxAbsDiff(toFloat(o_fused), toFloat(o_ref)), 5e-3);
}

// ---------- profiles ----------

TEST(BsrProfiles, BaselineSoftmaxHasWorstCaseAllocation)
{
    const GpuSpec spec = GpuSpec::a100();
    const BsrLayout layout = bigBirdPattern(4096, BigBirdParams{});
    BsrSoftmaxDesc desc;
    desc.batch = 16;
    desc.layout = &layout;
    const KernelProfile prof = bsrRowSoftmaxProfile(spec, desc);
    // Worst-case staging for a full row despite sparse rows.
    EXPECT_EQ(prof.geom.block.smemBytes, uint64_t(4096 * 4));
    EXPECT_EQ(prof.geom.numBlocks, 16 * 4096);
    // Lane utilization equals the density.
    EXPECT_NEAR(prof.laneUtilization, layout.density(), 1e-12);
    // Traffic covers only the stored values.
    EXPECT_EQ(prof.dramReadBytes,
              uint64_t(16) * uint64_t(layout.nnzElements()) * 2);
    EXPECT_GT(prof.workImbalance, 1.0);
}

TEST(BsrProfiles, DecomposedKernelsAllocatePerBlock)
{
    const GpuSpec spec = GpuSpec::a100();
    const BsrLayout layout = bigBirdPattern(4096, BigBirdParams{});
    BsrSoftmaxDesc desc;
    desc.batch = 4;
    desc.layout = &layout;
    const KernelProfile ls = bsrLsProfile(spec, desc);
    EXPECT_EQ(ls.geom.numBlocks, 4 * layout.nnzBlocks());
    EXPECT_EQ(ls.geom.block.smemBytes, uint64_t(64 * 64 * 2));
    EXPECT_DOUBLE_EQ(ls.laneUtilization, 1.0);
    const KernelProfile gs = bsrGsProfile(spec, desc);
    EXPECT_EQ(gs.geom.numBlocks, 4 * layout.nnzBlocks());
    const KernelProfile ir = bsrIrProfile(spec, desc);
    EXPECT_LT(ir.dramBytes(), ls.dramBytes() / 8);
}

TEST(BsrProfiles, SddUniformDsdImbalanced)
{
    const GpuSpec spec = GpuSpec::a100();
    const BsrLayout layout =
        longformerPattern(4096, LongformerParams{});
    BsrSddDesc sdd;
    sdd.batch = 16;
    sdd.layout = &layout;
    sdd.dHead = 64;
    EXPECT_DOUBLE_EQ(bsrSddProfile(spec, sdd).workImbalance, 1.0);

    BsrDsdDesc dsd;
    dsd.batch = 16;
    dsd.layout = &layout;
    dsd.dHead = 64;
    const KernelProfile prof = bsrDsdProfile(spec, dsd);
    EXPECT_GT(prof.workImbalance, 2.0); // dense global rows straggle
    EXPECT_EQ(prof.geom.numBlocks, 16 * layout.blockRows());
}

TEST(BsrProfiles, FlopsProportionalToNnz)
{
    const GpuSpec spec = GpuSpec::a100();
    const BsrLayout layout = bigBirdPattern(2048, BigBirdParams{});
    BsrSddDesc sdd;
    sdd.batch = 1;
    sdd.layout = &layout;
    sdd.dHead = 64;
    EXPECT_DOUBLE_EQ(bsrSddProfile(spec, sdd).tensorFlops,
                     2.0 * double(layout.nnzElements()) * 64.0);
}

} // namespace
} // namespace softrec
