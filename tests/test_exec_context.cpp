/**
 * @file
 * Unit tests of the host-parallel execution runtime: ThreadPool,
 * parallelFor chunking semantics, exception propagation, nested
 * regions, and SOFTREC_THREADS parsing.
 */

#include <atomic>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/profiler.hpp"

namespace softrec {
namespace {

/** A context over a local pool with the given total concurrency. */
struct PooledContext
{
    explicit PooledContext(int threads) : pool(threads)
    {
        ctx.pool = &pool;
    }
    ThreadPool pool;
    ExecContext ctx;
};

TEST(ExecContext, DefaultIsSerial)
{
    ExecContext ctx;
    EXPECT_TRUE(ctx.serial());
    EXPECT_EQ(ctx.threads(), 1);
}

TEST(ExecContext, PooledReportsConcurrency)
{
    PooledContext p(4);
    EXPECT_FALSE(p.ctx.serial());
    EXPECT_EQ(p.ctx.threads(), 4);
    EXPECT_EQ(p.pool.threads(), 4);
}

TEST(ParallelFor, EmptyRangeRunsNothing)
{
    PooledContext p(4);
    std::atomic<int> calls{0};
    parallelFor(p.ctx, 5, 5, 8,
                [&](int64_t, int64_t) { calls.fetch_add(1); });
    parallelFor(p.ctx, 7, 3, 8,
                [&](int64_t, int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanGrainIsOneChunk)
{
    PooledContext p(4);
    std::atomic<int> calls{0};
    int64_t b = -1, e = -1;
    parallelFor(p.ctx, 3, 7, 64, [&](int64_t c0, int64_t c1) {
        calls.fetch_add(1);
        b = c0;
        e = c1;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(b, 3);
    EXPECT_EQ(e, 7);
}

TEST(ParallelFor, ChunkBoundariesAreAFunctionOfRangeAndGrain)
{
    // Same (begin, end, grain) must produce the same chunk set on a
    // serial context and pools of different sizes: this is the
    // determinism contract's first half.
    const auto boundariesOf = [](const ExecContext &ctx) {
        std::vector<std::pair<int64_t, int64_t>> chunks(7);
        std::atomic<size_t> seen{0};
        parallelFor(ctx, 10, 61, 8, [&](int64_t c0, int64_t c1) {
            chunks[size_t((c0 - 10) / 8)] = {c0, c1};
            seen.fetch_add(1);
        });
        EXPECT_EQ(seen.load(), chunks.size());
        return chunks;
    };
    const auto serial = boundariesOf(ExecContext());
    for (int64_t c = 0; c < 7; ++c) {
        EXPECT_EQ(serial[size_t(c)].first, 10 + c * 8);
        EXPECT_EQ(serial[size_t(c)].second,
                  std::min<int64_t>(61, 10 + (c + 1) * 8));
    }
    PooledContext two(2), eight(8);
    EXPECT_EQ(boundariesOf(two.ctx), serial);
    EXPECT_EQ(boundariesOf(eight.ctx), serial);
}

TEST(ParallelFor, CoversEveryIterationExactlyOnce)
{
    PooledContext p(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(p.ctx, 0, 1000, 7, [&](int64_t c0, int64_t c1) {
        for (int64_t i = c0; i < c1; ++i)
            hits[size_t(i)].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolStaysUsable)
{
    PooledContext p(4);
    EXPECT_THROW(
        parallelFor(p.ctx, 0, 100, 1,
                    [&](int64_t c0, int64_t) {
                        if (c0 == 37)
                            throw std::runtime_error("chunk 37");
                    }),
        std::runtime_error);
    // The pool must survive a throwing job and run the next one.
    std::atomic<int64_t> sum{0};
    parallelFor(p.ctx, 0, 100, 1, [&](int64_t c0, int64_t c1) {
        for (int64_t i = c0; i < c1; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ParallelFor, NestedRegionRunsInline)
{
    PooledContext p(4);
    std::atomic<int> outer{0};
    std::vector<std::atomic<int>> inner(64);
    parallelFor(p.ctx, 0, 8, 1, [&](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
            outer.fetch_add(1);
            EXPECT_TRUE(ThreadPool::insideRun());
            // The nested region must not deadlock on the busy pool,
            // and must still cover its range.
            parallelFor(p.ctx, o * 8, (o + 1) * 8, 2,
                        [&](int64_t i0, int64_t i1) {
                            for (int64_t i = i0; i < i1; ++i)
                                inner[size_t(i)].fetch_add(1);
                        });
        }
    });
    EXPECT_EQ(outer.load(), 8);
    for (const auto &h : inner)
        EXPECT_EQ(h.load(), 1);
    EXPECT_FALSE(ThreadPool::insideRun());
}

TEST(ParallelFor, BackToBackJobsReuseThePool)
{
    // Regression guard for the stale-worker race: a worker finishing
    // its final claim of job N must never consume a chunk of job N+1.
    PooledContext p(4);
    for (int round = 0; round < 200; ++round) {
        std::vector<std::atomic<int>> hits(16);
        parallelFor(p.ctx, 0, 16, 1, [&](int64_t c0, int64_t c1) {
            for (int64_t i = c0; i < c1; ++i)
                hits[size_t(i)].fetch_add(1);
        });
        for (const auto &h : hits)
            ASSERT_EQ(h.load(), 1) << "round " << round;
    }
}

TEST(ParseThreadCount, AcceptsIntegersInRange)
{
    EXPECT_EQ(parseThreadCount("1"), 1);
    EXPECT_EQ(parseThreadCount("4"), 4);
    EXPECT_EQ(parseThreadCount("1024"), 1024);
}

TEST(ParseThreadCount, UnsetOrEmptyMeansSerial)
{
    EXPECT_EQ(parseThreadCount(nullptr), 1);
    EXPECT_EQ(parseThreadCount(""), 1);
}

TEST(ParseThreadCount, RejectsGarbageAndOutOfRange)
{
    EXPECT_EQ(parseThreadCount("0"), 1);
    EXPECT_EQ(parseThreadCount("-2"), 1);
    EXPECT_EQ(parseThreadCount("1025"), 1);
    EXPECT_EQ(parseThreadCount("four"), 1);
    EXPECT_EQ(parseThreadCount("4x"), 1);
}

TEST(ThreadPoolRun, SingleThreadPoolRunsInline)
{
    PooledContext p(1);
    std::vector<int> hits(32, 0); // no atomics: must be this thread
    parallelFor(p.ctx, 0, 32, 4, [&](int64_t c0, int64_t c1) {
        EXPECT_FALSE(ThreadPool::insideRun());
        for (int64_t i = c0; i < c1; ++i)
            ++hits[size_t(i)];
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, GrainMustBePositive)
{
    ExecContext ctx;
    EXPECT_THROW(parallelFor(ctx, 0, 4, 0, [](int64_t, int64_t) {}),
                 std::logic_error);
}

/** Set (or clear) an environment variable, restoring it on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        if (prev != nullptr)
            saved_ = prev;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (saved_.has_value())
            setenv(name_, saved_->c_str(), 1);
        else
            unsetenv(name_);
    }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    const char *name_;
    std::optional<std::string> saved_;
};

/** Reset the latch on entry and exit so latched state never leaks. */
struct SharedPoolGuard
{
    SharedPoolGuard() { ExecContext::resetSharedPoolForTest(); }
    ~SharedPoolGuard() { ExecContext::resetSharedPoolForTest(); }
};

TEST(SharedPool, FromEnvLatchesTheFirstValueItSees)
{
    SharedPoolGuard guard;
    ScopedEnv env("SOFTREC_THREADS", "3");
    EXPECT_EQ(ExecContext::fromEnv().threads(), 3);
    // The parse is latched: a later env change is ignored until the
    // pool is explicitly reset.
    setenv("SOFTREC_THREADS", "5", 1);
    EXPECT_EQ(ExecContext::fromEnv().threads(), 3);
    ExecContext::resetSharedPoolForTest();
    EXPECT_EQ(ExecContext::fromEnv().threads(), 5);
}

TEST(SharedPool, UnsetOrOneMeansSerialNoPool)
{
    SharedPoolGuard guard;
    {
        ScopedEnv env("SOFTREC_THREADS", nullptr);
        EXPECT_TRUE(ExecContext::fromEnv().serial());
    }
    ExecContext::resetSharedPoolForTest();
    {
        ScopedEnv env("SOFTREC_THREADS", "1");
        EXPECT_TRUE(ExecContext::fromEnv().serial());
    }
}

TEST(SharedPool, ResetJoinsWorkersBeforeProfilerReads)
{
    // Profiled parallel work, then a reset, then a snapshot: the
    // reset joins the pool's workers, which must order every worker's
    // per-thread profiler slot writes before the merge/snapshot pair
    // below (the tsan pass proves the ordering, not just the values).
    SharedPoolGuard guard;
    ScopedEnv env("SOFTREC_THREADS", "4");
    prof::Profiler profiler;
    {
        ExecContext ctx = ExecContext::fromEnv();
        ASSERT_EQ(ctx.threads(), 4);
        ctx.profiler = &profiler;
        prof::Scope scope(ctx, "test.shared_pool");
        parallelFor(ctx, 0, 64, 1, [&](int64_t c0, int64_t c1) {
            scope.addRead(uint64_t(c1 - c0) * 2);
            scope.addWrite(uint64_t(c1 - c0));
        });
    }
    ExecContext::resetSharedPoolForTest();
    const prof::ScopeStats stats =
        profiler.statsFor("test.shared_pool");
    EXPECT_EQ(stats.calls, 1);
    EXPECT_EQ(stats.bytesRead, 128u);
    EXPECT_EQ(stats.bytesWritten, 64u);
    EXPECT_EQ(stats.maxThreads, 4);
}

} // namespace
} // namespace softrec
