/**
 * @file
 * Tests of the recomposition planner: kernel sequences, categories,
 * attention-matrix sweep counts, and fusion wiring per strategy.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/recomposition.hpp"
#include "model/schedule.hpp"
#include "sparse/patterns.hpp"

namespace softrec {
namespace {

SdaConfig
denseConfig()
{
    SdaConfig config;
    config.batch = 1;
    config.heads = 16;
    config.seqLen = 4096;
    config.dHead = 64;
    return config;
}

std::vector<std::string>
kernelNames(const SdaSchedule &sched)
{
    std::vector<std::string> names;
    for (const KernelProfile &prof : sched.kernels)
        names.push_back(prof.name);
    return names;
}

TEST(Planner, BaselineDenseSequence)
{
    const auto sched = buildSdaSchedule(GpuSpec::a100(), denseConfig(),
                                        Strategy::Baseline);
    EXPECT_EQ(kernelNames(sched),
              (std::vector<std::string>{"sda.qk", "sda.softmax",
                                        "sda.av"}));
    EXPECT_EQ(sched.kernels[0].category, KernelCategory::SdaMatMul);
    EXPECT_EQ(sched.kernels[1].category, KernelCategory::Softmax);
    EXPECT_EQ(sched.kernels[2].category, KernelCategory::SdaMatMul);
    EXPECT_EQ(sched.attentionSweeps, 4);
    EXPECT_EQ(sched.intermediateBytes, 0u);
}

TEST(Planner, DecomposedDenseSequence)
{
    const auto sched = buildSdaSchedule(GpuSpec::a100(), denseConfig(),
                                        Strategy::Decomposed);
    EXPECT_EQ(kernelNames(sched),
              (std::vector<std::string>{"sda.qk", "sda.ls", "sda.ir",
                                        "sda.gs", "sda.av"}));
    EXPECT_EQ(sched.attentionSweeps, 6);
    EXPECT_GT(sched.intermediateBytes, 0u);
    // No kernel carries fused softmax work under SD.
    for (const KernelProfile &prof : sched.kernels)
        EXPECT_DOUBLE_EQ(prof.fusedPenalty, 1.0);
}

TEST(Planner, FusedDenseSequence)
{
    const auto sched = buildSdaSchedule(GpuSpec::a100(), denseConfig(),
                                        Strategy::Fused);
    EXPECT_EQ(kernelNames(sched),
              (std::vector<std::string>{"sda.qk+ls", "sda.ir",
                                        "sda.av+gs"}));
    EXPECT_GT(sched.kernels[0].fusedPenalty, 1.0);
    EXPECT_GT(sched.kernels[2].fusedPenalty, 1.0);
    EXPECT_EQ(sched.kernels[0].category, KernelCategory::SdaMatMul);
    EXPECT_EQ(sched.kernels[1].category, KernelCategory::SoftmaxIr);
    EXPECT_EQ(sched.attentionSweeps, 2);
}

TEST(Planner, SweepCountsMatchFig6)
{
    // 4 baseline -> 6 decomposed -> 2 fused, dense and sparse alike.
    const BsrLayout layout = bigBirdPattern(4096, BigBirdParams{});
    SdaConfig sparse = denseConfig();
    sparse.layout = &layout;
    for (const SdaConfig &config : {denseConfig(), sparse}) {
        const GpuSpec spec = GpuSpec::a100();
        EXPECT_EQ(
            buildSdaSchedule(spec, config, Strategy::Baseline)
                .attentionSweeps, 4);
        EXPECT_EQ(
            buildSdaSchedule(spec, config, Strategy::Decomposed)
                .attentionSweeps, 6);
        EXPECT_EQ(
            buildSdaSchedule(spec, config, Strategy::Fused)
                .attentionSweeps, 2);
    }
}

TEST(Planner, FusedTrafficHalvesBaselineAttentionTraffic)
{
    // The headline mechanism: SDF's SDA block moves roughly half the
    // attention-matrix bytes of the baseline (Fig. 6).
    const GpuSpec spec = GpuSpec::a100();
    auto total_bytes = [&](Strategy strategy) {
        uint64_t total = 0;
        for (const KernelProfile &prof :
             buildSdaSchedule(spec, denseConfig(), strategy).kernels)
            total += prof.dramBytes();
        return total;
    };
    const uint64_t base = total_bytes(Strategy::Baseline);
    const uint64_t sd = total_bytes(Strategy::Decomposed);
    const uint64_t sdf = total_bytes(Strategy::Fused);
    EXPECT_GT(sd, base * 1.3);
    EXPECT_LT(sdf, base * 0.60);
}

TEST(Planner, FusionForcesTileWidthToSubVector)
{
    SdaConfig config = denseConfig();
    config.subVector = 128;
    config.attnTiling.tileN = 64;
    const auto sched = buildSdaSchedule(GpuSpec::a100(), config,
                                        Strategy::Fused);
    // QK+LS grid reflects tileN = 128: 32 x 32 tiles x 16 heads.
    EXPECT_EQ(sched.kernels[0].geom.numBlocks, 16 * 32 * 32);
}

TEST(Planner, CausalMaskReachesEpilogueWork)
{
    SdaConfig config = denseConfig();
    config.causalMask = true;
    const auto masked = buildSdaSchedule(GpuSpec::a100(), config,
                                         Strategy::Baseline);
    const auto plain = buildSdaSchedule(GpuSpec::a100(), denseConfig(),
                                        Strategy::Baseline);
    EXPECT_GT(masked.kernels[0].cudaFlops, plain.kernels[0].cudaFlops);
}

TEST(Planner, WideHeadsUseWideEfficiencyClass)
{
    SdaConfig config = denseConfig();
    EXPECT_EQ(config.attentionClass(), GemmShapeClass::Attention);
    config.dHead = 128;
    EXPECT_EQ(config.attentionClass(), GemmShapeClass::AttentionWide);
}

TEST(Planner, SparseScheduleUsesBsrKernels)
{
    const BsrLayout layout = bigBirdPattern(4096, BigBirdParams{});
    SdaConfig config = denseConfig();
    config.layout = &layout;
    EXPECT_EQ(config.attentionClass(), GemmShapeClass::BlockSparse);
    EXPECT_EQ(config.attentionMatrixBytes(),
              uint64_t(16) * uint64_t(layout.nnzElements()) * 2);

    const auto sched = buildSdaSchedule(GpuSpec::a100(), config,
                                        Strategy::Fused);
    EXPECT_EQ(kernelNames(sched),
              (std::vector<std::string>{"sda.qk+ls", "sda.ir",
                                        "sda.av+gs"}));
    // SDD grid: one TB per non-zero block per head.
    EXPECT_EQ(sched.kernels[0].geom.numBlocks,
              16 * layout.nnzBlocks());
}

TEST(Planner, SparseSubVectorMustMatchBlockSize)
{
    const BsrLayout layout = bigBirdPattern(4096, BigBirdParams{});
    SdaConfig config = denseConfig();
    config.layout = &layout;
    config.subVector = 32; // != block size 64
    EXPECT_THROW(buildSdaSchedule(GpuSpec::a100(), config,
                                  Strategy::Fused),
                 std::logic_error);
}

TEST(Planner, SubVectorMustDivideSequenceLength)
{
    SdaConfig config = denseConfig();
    config.subVector = 100;
    EXPECT_THROW(buildSdaSchedule(GpuSpec::a100(), config,
                                  Strategy::Baseline),
                 std::logic_error);
}

TEST(Planner, ScaleFollowsHeadWidth)
{
    SdaConfig config = denseConfig();
    EXPECT_NEAR(config.scale(), 0.125, 1e-12); // 1/sqrt(64)
    config.dHead = 128;
    EXPECT_NEAR(config.scale(), 1.0 / std::sqrt(128.0), 1e-12);
}

TEST(Planner, ChooseSubVectorDividesAnyLength)
{
    EXPECT_EQ(chooseSubVector(4096, 64), 64);
    EXPECT_EQ(chooseSubVector(1000, 64), 50);
    EXPECT_EQ(chooseSubVector(100, 64), 50);
    EXPECT_EQ(chooseSubVector(97, 64), 1); // prime length
    EXPECT_EQ(chooseSubVector(64, 128), 64);
    for (int64_t len : {384, 1000, 1536, 4095}) {
        const int64_t t = chooseSubVector(len, 64);
        EXPECT_EQ(len % t, 0) << len;
        EXPECT_LE(t, 64);
        EXPECT_GE(t, 1);
    }
}

TEST(Planner, OddSequenceLengthsPlanThroughTheScheduler)
{
    // L = 1000 is not a multiple of 64; the scheduler must adapt T
    // instead of failing.
    const GpuSpec spec = GpuSpec::a100();
    log::Sink prev = log::setSink([](log::Level, const std::string &) {});
    RunConfig run;
    run.seqLen = 1000;
    run.strategy = Strategy::Fused;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    log::setSink(prev);
    EXPECT_EQ(sched.sdaSchedule().kernels.size(), 3u);
    Gpu gpu(spec);
    sched.run(gpu);
    EXPECT_GT(gpu.totalSeconds(), 0.0);
}

TEST(Planner, StrategyNames)
{
    EXPECT_STREQ(strategyName(Strategy::Baseline), "Baseline");
    EXPECT_STREQ(strategyName(Strategy::Decomposed), "SD");
    EXPECT_STREQ(strategyName(Strategy::Fused), "SDF");
    EXPECT_EQ(allStrategies().size(), 3u);
}

} // namespace
} // namespace softrec
