/**
 * @file
 * Tests of the single-pass streaming-attention backend: tolerance
 * equivalence against the recomposed pipeline and the double gold
 * reference (bit-identity with the recomposed path is explicitly NOT
 * the contract — the softmax orders differ), bit-identity of the
 * streaming backend with itself across thread counts and SIMD
 * backends, bit-identity between streaming prefill rows and streaming
 * decode, edge cases of both decode kernels (all-masked rows, denom
 * underflow, single-token context), and the SOFTREC_ATTENTION knob's
 * hard-error validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "kernels/decode_attention.hpp"
#include "kernels/streaming_attention.hpp"

namespace softrec {
namespace {

/** RAII environment-variable override with restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        had_ = prev != nullptr;
        if (had_)
            saved_ = prev;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string saved_;
};

Tensor<Half>
randomHalf(Rng &rng, int64_t rows, int64_t cols)
{
    Tensor<Half> t(Shape({rows, cols}));
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return t;
}

AttentionInputs
randomInputs(Rng &rng, const SdaConfig &config)
{
    AttentionInputs inputs;
    inputs.q = randomHalf(rng, config.seqLen, config.dHead);
    inputs.k = randomHalf(rng, config.keyLen(), config.dHead);
    inputs.v = randomHalf(rng, config.keyLen(), config.dHead);
    return inputs;
}

double
maxAbsVsReference(const Tensor<Half> &got, const Tensor<float> &want)
{
    double worst = 0.0;
    for (int64_t i = 0; i < got.shape().dim(0); ++i)
        for (int64_t j = 0; j < got.shape().dim(1); ++j)
            worst = std::max(
                worst, std::abs(double(float(got.at(i, j))) -
                                double(want.at(i, j))));
    return worst;
}

double
maxAbsBetween(const Tensor<Half> &a, const Tensor<Half> &b)
{
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst,
                         std::abs(double(float(a.data()[i])) -
                                  double(float(b.data()[i]))));
    return worst;
}

/** Tolerance of the streaming-vs-recomposed contract (fp16 storage
 *  rounding of score/probability rows differs between the paths; the
 *  outputs are convex combinations of O(1) values). */
constexpr double kTol = 2e-2;

SdaConfig
streamingConfig(int64_t seq_len, int64_t kv_len, int64_t d_head,
                bool causal)
{
    SdaConfig config;
    config.seqLen = seq_len;
    config.kvLen = kv_len;
    config.dHead = d_head;
    config.causalMask = causal;
    config.backend = AttentionBackend::Streaming;
    return config;
}

/** Run one config under (threads, backend) and return the output. */
Tensor<Half>
runWith(const SdaConfig &config, const AttentionInputs &inputs,
        int threads, SimdBackend backend)
{
    const SimdBackend prev = setSimdBackend(backend);
    Tensor<Half> out;
    {
        ThreadPool pool(threads);
        ExecContext ctx;
        if (threads > 1)
            ctx.pool = &pool;
        out = runAttention(ctx, config, inputs, Strategy::Baseline);
    }
    setSimdBackend(prev);
    return out;
}

TEST(StreamingAttention, MatchesRecomposedAndReferenceWithinTolerance)
{
    // Ragged L (not a tile multiple), causal and non-causal, across
    // thread counts and SIMD backends: streaming must agree with the
    // recomposed pipeline and the double gold within kTol everywhere.
    Rng rng(41);
    for (const bool causal : {false, true}) {
        SdaConfig config = streamingConfig(/*seq_len=*/150,
                                           /*kv_len=*/0,
                                           /*d_head=*/32, causal);
        const AttentionInputs inputs = randomInputs(rng, config);
        const Tensor<float> gold =
            referenceDenseAttention(config, inputs);

        SdaConfig recomposed = config;
        recomposed.backend = AttentionBackend::Recomposed;
        const Tensor<Half> base = runWith(recomposed, inputs, 1,
                                          SimdBackend::Scalar);

        for (const int threads : {1, 4}) {
            for (const SimdBackend backend :
                 {SimdBackend::Scalar, detectedSimdBackend()}) {
                const Tensor<Half> out =
                    runWith(config, inputs, threads, backend);
                EXPECT_LT(maxAbsVsReference(out, gold), kTol)
                    << "causal=" << causal << " threads=" << threads;
                EXPECT_LT(maxAbsBetween(out, base), kTol)
                    << "causal=" << causal << " threads=" << threads;
            }
        }
    }
}

TEST(StreamingAttention, BitIdenticalAcrossThreadsAndSimd)
{
    // Within the streaming backend determinism is exact: rows are
    // row-local and every conversion is bit-identical per backend.
    Rng rng(43);
    const SdaConfig config =
        streamingConfig(/*seq_len=*/130, /*kv_len=*/0,
                        /*d_head=*/32, /*causal=*/true);
    const AttentionInputs inputs = randomInputs(rng, config);

    auto bits = [&](int threads, SimdBackend backend) {
        const Tensor<Half> out =
            runWith(config, inputs, threads, backend);
        std::vector<uint16_t> b;
        for (int64_t i = 0; i < out.numel(); ++i)
            b.push_back(out.data()[i].bits());
        return b;
    };
    const auto reference = bits(1, SimdBackend::Scalar);
    EXPECT_EQ(bits(4, SimdBackend::Scalar), reference);
    EXPECT_EQ(bits(1, detectedSimdBackend()), reference);
    EXPECT_EQ(bits(4, detectedSimdBackend()), reference);
}

TEST(StreamingAttention, LongRaggedCrossAttentionWithinTolerance)
{
    // kv = 16385: one token past a tile boundary at L = 16k, the
    // paper's longest evaluation length. Cross-attention shape (64
    // queries) keeps the runtime test-sized.
    Rng rng(47);
    const SdaConfig config =
        streamingConfig(/*seq_len=*/64, /*kv_len=*/16385,
                        /*d_head=*/32, /*causal=*/false);
    const AttentionInputs inputs = randomInputs(rng, config);

    SdaConfig recomposed = config;
    recomposed.backend = AttentionBackend::Recomposed;
    const Tensor<Half> base =
        runWith(recomposed, inputs, 4, detectedSimdBackend());
    const Tensor<Half> out =
        runWith(config, inputs, 4, detectedSimdBackend());
    EXPECT_LT(maxAbsBetween(out, base), kTol);
}

// --- streaming prefill vs streaming decode ----------------------------

/** Single-block KV view over a [rows, width] tensor. */
struct TensorKvView
{
    const std::byte *block;
    KvRowsView view;

    TensorKvView(const Tensor<Half> &t, int64_t rows)
        : block(reinterpret_cast<const std::byte *>(t.data()))
    {
        view.blocks = &block;
        view.blockTokens = t.shape().dim(0);
        view.rowWidth = t.shape().dim(1);
        view.rows = rows;
    }
};

TEST(StreamingAttention, CausalPrefillRowsMatchStreamingDecodeBitForBit)
{
    // Every causal prefill row must equal a streaming decode of the
    // same query over context [0, i] bit for bit: same key-tile walk,
    // same update sequence, masked tail positions are exact no-ops.
    Rng rng(53);
    const int64_t L = 100; // spans a partial final tile
    const int64_t dh = 32;
    const Tensor<Half> q = randomHalf(rng, L, dh);
    const Tensor<Half> k = randomHalf(rng, L, dh);
    const Tensor<Half> v = randomHalf(rng, L, dh);

    StreamingAttentionDesc desc;
    desc.seqLen = L;
    desc.kvLen = L;
    desc.dHead = dh;
    desc.causalMask = true;
    desc.scale = 1.0 / std::sqrt(double(dh));
    Tensor<Half> prefill(Shape({L, dh}));
    streamingAttentionRun(ExecContext(), desc, q, k, v, prefill);

    DecodeAttendDesc step;
    step.dHead = dh;
    step.headOffset = 0;
    step.scale = desc.scale;
    std::vector<Half> out(size_t(dh), Half(0.0f));
    for (const int64_t i : {int64_t(0), int64_t(63), int64_t(64),
                            int64_t(L - 1)}) {
        TensorKvView kv(k, i + 1);
        TensorKvView vv(v, i + 1);
        decodeAttendStreamRun(ExecContext(), step,
                              q.data() + i * dh, kv.view, vv.view,
                              out.data());
        for (int64_t j = 0; j < dh; ++j)
            ASSERT_EQ(out[size_t(j)].bits(), prefill.at(i, j).bits())
                << "row " << i << " column " << j;
    }
}

// --- decode-kernel edge cases -----------------------------------------

using DecodeKernel = void (*)(const ExecContext &,
                              const DecodeAttendDesc &, const Half *,
                              const KvRowsView &, const KvRowsView &,
                              Half *, DecodeAttendWorkspace *);

class DecodeKernelEdgeCases
    : public ::testing::TestWithParam<DecodeKernel>
{
};

INSTANTIATE_TEST_SUITE_P(BothBackends, DecodeKernelEdgeCases,
                         ::testing::Values(&decodeAttendRun,
                                           &decodeAttendStreamRun));

TEST_P(DecodeKernelEdgeCases, AllMaskedRowYieldsZeros)
{
    // Every score -inf (fully masked row): the kernel must emit a
    // zero row, not NaNs — exp(-inf - -inf) is the trap.
    const int64_t dh = 8;
    const int64_t context = 70; // spans a partial second key tile
    const float neg_inf = -std::numeric_limits<float>::infinity();
    Tensor<Half> k(Shape({context, dh}));
    Rng rng(59);
    Tensor<Half> v = randomHalf(rng, context, dh);
    std::vector<Half> q(size_t(dh), Half(1.0f));
    for (int64_t i = 0; i < k.numel(); ++i)
        k.data()[i] = Half(neg_inf);

    DecodeAttendDesc desc;
    desc.dHead = dh;
    TensorKvView kv(k, context);
    TensorKvView vv(v, context);
    std::vector<Half> out(size_t(dh), Half(7.0f));
    GetParam()(ExecContext(), desc, q.data(), kv.view, vv.view,
               out.data(), nullptr);
    for (int64_t j = 0; j < dh; ++j) {
        EXPECT_FALSE(std::isnan(float(out[size_t(j)]))) << j;
        EXPECT_EQ(float(out[size_t(j)]), 0.0f) << j;
    }
}

TEST_P(DecodeKernelEdgeCases, OneHotRowSurvivesDenomUnderflow)
{
    // One dominant score, the rest ~exp(-90) below it: the exp terms
    // underflow toward zero but the output must converge to the
    // dominant V row, not 0/0.
    const int64_t dh = 8;
    const int64_t context = 65;
    const int64_t hot = 37;
    Rng rng(61);
    Tensor<Half> k(Shape({context, dh}));
    Tensor<Half> v = randomHalf(rng, context, dh);
    for (int64_t pos = 0; pos < context; ++pos)
        for (int64_t j = 0; j < dh; ++j)
            k.at(pos, j) = Half(pos == hot ? 12.0f : -12.0f);
    std::vector<Half> q(size_t(dh), Half(1.0f));

    DecodeAttendDesc desc;
    desc.dHead = dh;
    TensorKvView kv(k, context);
    TensorKvView vv(v, context);
    std::vector<Half> out(size_t(dh), Half(0.0f));
    GetParam()(ExecContext(), desc, q.data(), kv.view, vv.view,
               out.data(), nullptr);
    for (int64_t j = 0; j < dh; ++j)
        EXPECT_NEAR(float(out[size_t(j)]), float(v.at(hot, j)), 1e-2)
            << j;
}

TEST_P(DecodeKernelEdgeCases, SingleTokenContextReturnsTheVRow)
{
    // Context of one: softmax over one score is exactly 1, so the
    // output is the V row bit for bit (fp32 round-trip is exact).
    const int64_t dh = 8;
    Rng rng(67);
    Tensor<Half> k = randomHalf(rng, 1, dh);
    Tensor<Half> v = randomHalf(rng, 1, dh);
    std::vector<Half> q(size_t(dh), Half(0.25f));

    DecodeAttendDesc desc;
    desc.dHead = dh;
    desc.scale = 0.125;
    TensorKvView kv(k, 1);
    TensorKvView vv(v, 1);
    std::vector<Half> out(size_t(dh), Half(0.0f));
    GetParam()(ExecContext(), desc, q.data(), kv.view, vv.view,
               out.data(), nullptr);
    for (int64_t j = 0; j < dh; ++j)
        EXPECT_EQ(out[size_t(j)].bits(), v.at(0, j).bits()) << j;
}

// --- SOFTREC_ATTENTION knob -------------------------------------------

TEST(AttentionBackendEnv, ParsesTheTwoBackends)
{
    {
        ScopedEnv env("SOFTREC_ATTENTION", nullptr);
        EXPECT_EQ(attentionBackendFromEnv(),
                  AttentionBackend::Recomposed);
    }
    {
        ScopedEnv env("SOFTREC_ATTENTION", "recomposed");
        EXPECT_EQ(attentionBackendFromEnv(),
                  AttentionBackend::Recomposed);
    }
    {
        ScopedEnv env("SOFTREC_ATTENTION", "streaming");
        EXPECT_EQ(attentionBackendFromEnv(),
                  AttentionBackend::Streaming);
    }
}

TEST(AttentionBackendEnv, GarbageIsAHardErrorNotAFallback)
{
    for (const char *bad : {"flash", "Streaming", "1", " streaming"}) {
        ScopedEnv env("SOFTREC_ATTENTION", bad);
        EXPECT_THROW(attentionBackendFromEnv(), std::runtime_error)
            << bad;
    }
}

} // namespace
} // namespace softrec
